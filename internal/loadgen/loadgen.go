// Package loadgen is the deterministic load-replay harness for the
// decision daemon: it synthesizes per-chip telemetry by running N
// decorrelated simulator clones (engine.ChipStream), drives a live
// `boreas serve` endpoint with that telemetry over HTTP, measures the
// full request-latency distribution (obs.HDRHistogram), and runs every
// served decision through a shadow in-process oracle engine.Session —
// so one run answers both questions a scaling PR must answer: how fast
// is the daemon, and is what it serves still bit-identical to the
// in-process controller.
//
// Determinism contract: the decision stream is generated in lockstep
// rounds — each round advances every chip one decision interval,
// batches the boundary observations in chip order, dispatches them
// (with whatever batch size, inflight bound and pacing the timing
// experiment wants), waits for every response, then diffs and applies
// the served frequencies in chip order. Batching, concurrency and
// pacing therefore shape only the Timing section of the report; the
// Replay section (decisions, digest, divergences, fleet aggregates) is
// byte-identical for a given seed at any -inflight/-batch/-qps, which
// is exactly what the loadtest smoke asserts by comparing replay files
// across differently-concurrent runs.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/hotgauge/boreas/internal/control"
	"github.com/hotgauge/boreas/internal/engine"
	"github.com/hotgauge/boreas/internal/obs"
	"github.com/hotgauge/boreas/internal/platform"
	"github.com/hotgauge/boreas/internal/runner"
	"github.com/hotgauge/boreas/internal/serve"
	"github.com/hotgauge/boreas/internal/sim"
)

// Config parametrises one load-replay run.
type Config struct {
	// Addr is the daemon's listen address ("host:port"). Empty boots a
	// private in-process server on a loopback port — the self-contained
	// mode CI uses, with no fixed-port dependence. When pointing at an
	// external daemon it must be fresh (no prior sessions for this run's
	// chip IDs) and configured with the same platform, controller and
	// start frequency, or the oracle will — correctly — report
	// divergences.
	Addr string
	// Platform supplies the simulator configuration and VF curve.
	// Required.
	Platform *platform.Platform
	// Controller is the template controller the oracle sessions (and the
	// in-process server, when Addr is empty) clone per chip. Required.
	Controller control.Controller
	// Chips is the synthetic fleet size. Required (positive).
	Chips int
	// Ticks is the number of decisions per chip. At least one of Ticks
	// and Duration must be positive; only tick-bounded runs carry the
	// byte-identical replay guarantee (a wall-clock bound decides when
	// to stop from nondeterministic timing).
	Ticks int
	// Duration, when positive, stops the run at the first round boundary
	// past this wall-clock budget.
	Duration time.Duration
	// Batch is the number of observations per /v1/decide request
	// (<= serve.MaxBatch). Zero: every chip of a round in one request,
	// capped at serve.MaxBatch.
	Batch int
	// MaxInflight bounds concurrent HTTP requests (closed-loop arrival).
	// Zero: every request of a round in flight at once.
	MaxInflight int
	// TargetQPS paces request starts to this rate (open-loop arrival).
	// Zero: no pacing — dispatch as fast as the daemon allows.
	TargetQPS float64
	// Seed decorrelates the fleet: chip i simulates with
	// runner.DeriveSeed(Seed, i), so the whole run replays from one
	// number.
	Seed uint64
	// Loop shapes each chip's decision interval (period, start
	// frequency, sensor). Steps is ignored — Ticks/Duration bound the
	// run. Zero fields default as in engine fleets.
	Loop engine.LoopConfig
	// Workers bounds the simulator-advance worker pool (0: one per CPU).
	// Replay output is bit-identical at any worker count.
	Workers int
	// Client overrides the HTTP client (nil: a private client with a
	// 30 s request timeout).
	Client *http.Client
}

func (c Config) validate() error {
	if c.Platform == nil {
		return fmt.Errorf("loadgen: Config.Platform is required")
	}
	if c.Controller == nil {
		return fmt.Errorf("loadgen: Config.Controller is required")
	}
	if c.Chips <= 0 {
		return fmt.Errorf("loadgen: need a positive chip count, got %d", c.Chips)
	}
	if c.Ticks <= 0 && c.Duration <= 0 {
		return fmt.Errorf("loadgen: need a positive tick count or duration")
	}
	if c.Batch < 0 || c.Batch > serve.MaxBatch {
		return fmt.Errorf("loadgen: batch %d outside [0, %d]", c.Batch, serve.MaxBatch)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("loadgen: negative inflight bound %d", c.MaxInflight)
	}
	if c.TargetQPS < 0 || math.IsNaN(c.TargetQPS) || math.IsInf(c.TargetQPS, 0) {
		return fmt.Errorf("loadgen: target QPS must be finite and non-negative, got %v", c.TargetQPS)
	}
	return nil
}

// chip is one synthetic fleet member: its telemetry stream, its shadow
// oracle session, and the frequency currently commanded by the daemon.
type chip struct {
	id     string
	stream *engine.ChipStream
	oracle *engine.Session
	freq   float64
	obs    engine.Observation // this round's boundary observation
	served serve.Decision     // this round's daemon decision
}

// defaultedLoop mirrors engine fleet defaulting for the stream config:
// unset fields inherit DefaultLoopConfig, Steps is left to the stream
// (which ignores it).
func defaultedLoop(loop engine.LoopConfig) engine.LoopConfig {
	def := engine.DefaultLoopConfig()
	if loop.DecisionPeriod == 0 {
		loop.DecisionPeriod = def.DecisionPeriod
	}
	if loop.StartFreq == 0 {
		loop.StartFreq = def.StartFreq
	}
	if loop.SensorIndex == 0 {
		loop.SensorIndex = def.SensorIndex
	}
	loop.Steps = 0
	return loop
}

// Run executes the load-replay campaign and returns its report. The
// context cancels the run between rounds (and aborts in-flight HTTP
// requests); a cancelled run returns the context error.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	loop := defaultedLoop(cfg.Loop)
	if loop.VF.IsZero() {
		loop.VF = cfg.Platform.VF
	}

	// Build the synthetic fleet: chip i owns a decorrelated pipeline
	// clone (same derivation as engine.RunFleet, so a fleet study and a
	// load test with the same seed simulate the same chips), a telemetry
	// stream, and a shadow oracle session.
	base, err := sim.New(cfg.Platform.SimConfig())
	if err != nil {
		return nil, fmt.Errorf("loadgen: platform pipeline: %w", err)
	}
	workloads := base.Workloads().TestNames()
	if len(workloads) == 0 {
		return nil, fmt.Errorf("loadgen: platform has no test workloads")
	}
	chips, err := runner.Map(ctx, cfg.Workers, cfg.Chips, func(ctx context.Context, i int) (*chip, error) {
		seed := runner.DeriveSeed(cfg.Seed, uint64(i))
		p, err := base.CloneWithSeed(seed)
		if err != nil {
			return nil, fmt.Errorf("loadgen: chip %d: %w", i, err)
		}
		w, err := p.Workloads().ByName(workloads[i%len(workloads)])
		if err != nil {
			return nil, fmt.Errorf("loadgen: chip %d: %w", i, err)
		}
		stream, err := engine.NewChipStream(p, w, loop)
		if err != nil {
			return nil, fmt.Errorf("loadgen: chip %d: %w", i, err)
		}
		oracle, err := engine.NewSession(engine.SessionConfig{
			Controller: control.CloneController(cfg.Controller),
			VF:         loop.VF,
			StartFreq:  loop.StartFreq,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: chip %d oracle: %w", i, err)
		}
		return &chip{
			id:     fmt.Sprintf("chip-%04d", i),
			stream: stream,
			oracle: oracle,
			freq:   oracle.Freq(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Resolve the target: an external daemon, or a private in-process
	// server sized so capacity eviction can never reset a chip's ticks
	// mid-run (which would be a false divergence).
	addr := cfg.Addr
	inProcess := addr == ""
	if inProcess {
		srv, err := startInProcess(cfg, loop)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		addr = srv.Addr()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	lc := newLoadClient(client, addr)

	batch := cfg.Batch
	if batch == 0 {
		batch = cfg.Chips
		if batch > serve.MaxBatch {
			batch = serve.MaxBatch
		}
	}
	requestsPerRound := (cfg.Chips + batch - 1) / batch
	dispatchers := cfg.MaxInflight
	if dispatchers == 0 || dispatchers > requestsPerRound {
		dispatchers = requestsPerRound
	}
	// One latency histogram per dispatcher slot (requests shard over
	// them round-robin; Record is concurrent-safe); the merged snapshot
	// is the report's percentile table.
	hists := make([]*obs.HDRHistogram, dispatchers)
	for i := range hists {
		hists[i] = obs.NewHDRHistogram()
	}
	pacer := newPacer(cfg.TargetQPS)

	rep := &Report{
		Replay: ReplayReport{
			Platform:   cfg.Platform.Name,
			Controller: cfg.Controller.Name(),
			Chips:      cfg.Chips,
			Seed:       cfg.Seed,
		},
		Timing: TimingReport{
			Batch:           batch,
			MaxInflight:     cfg.MaxInflight,
			TargetQPS:       cfg.TargetQPS,
			InProcessServer: inProcess,
		},
	}
	digest := newReplayDigest()

	start := time.Now()
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}
	requests := 0
	for tick := 0; cfg.Ticks <= 0 || tick < cfg.Ticks; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}

		// 1. Advance every chip one decision interval in parallel; the
		// boundary observation is this round's request payload.
		err := runner.ForEach(ctx, cfg.Workers, cfg.Chips, func(ctx context.Context, i int) error {
			o, err := chips[i].stream.Next(chips[i].freq)
			if err != nil {
				return fmt.Errorf("loadgen: %s tick %d: %w", chips[i].id, tick, err)
			}
			chips[i].obs = o
			return nil
		})
		if err != nil {
			return nil, err
		}

		// 2. Dispatch the round's requests: chips in order, sliced into
		// batches, at most MaxInflight in flight, starts paced to
		// TargetQPS. Request latency lands in the dispatcher's own
		// histogram.
		err = runner.ForEach(ctx, dispatchers, requestsPerRound, func(ctx context.Context, r int) error {
			lo := r * batch
			hi := lo + batch
			if hi > cfg.Chips {
				hi = cfg.Chips
			}
			pacer.wait(ctx)
			t0 := time.Now()
			decisions, err := lc.decide(ctx, chips[lo:hi])
			if err != nil {
				return err
			}
			hists[r%dispatchers].Record(time.Since(t0))
			for j, d := range decisions {
				chips[lo+j].served = d
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		requests += requestsPerRound

		// 3. Barrier passed: diff every served decision against the
		// shadow oracle and fold it into the replay digest, in chip
		// order. The served frequency drives the next interval even on a
		// divergence — the stream must keep following the daemon under
		// test, and the diff will keep reporting.
		for i, c := range chips {
			want := c.oracle.Decide(c.obs)
			digest.add(i, c.served)
			rep.Replay.Decisions++
			if d := diffDecision(c.id, i, want, c.served); d != nil {
				rep.Replay.Divergences++
				if rep.Replay.FirstDivergence == nil {
					rep.Replay.FirstDivergence = d
				}
			}
			c.freq = c.served.FreqGHz
		}
		rep.Replay.Ticks++
	}
	elapsed := time.Since(start)

	// Fleet aggregates come from the streams — the simulated consequence
	// of the decisions the daemon actually served.
	rep.Replay.WorstSeverity = math.Inf(-1)
	sum := 0.0
	for _, c := range chips {
		s := c.stream.Summary()
		sum += s.AvgFreq
		rep.Replay.WorstSeverity = math.Max(rep.Replay.WorstSeverity, s.PeakSeverity)
		rep.Replay.TotalIncursions += s.Incursions
	}
	rep.Replay.AvgFreq = sum / float64(len(chips))
	rep.Replay.Digest = digest.hex()

	merged := obs.EmptyHDRSnapshot()
	for _, h := range hists {
		if err := merged.Merge(h.Snapshot()); err != nil {
			return nil, err
		}
	}
	rep.Timing.DurationSec = elapsed.Seconds()
	rep.Timing.Requests = requests
	if elapsed > 0 {
		rep.Timing.QPS = float64(requests) / elapsed.Seconds()
		rep.Timing.DecisionsPerSec = float64(rep.Replay.Decisions) / elapsed.Seconds()
	}
	if rep.Replay.Decisions > 0 {
		rep.Timing.PerDecisionMicros = elapsed.Seconds() * 1e6 / float64(rep.Replay.Decisions)
	}
	rep.Timing.Latency = merged.Summary()
	return rep, nil
}

// diffDecision compares a served decision with the oracle's, field by
// field, bit-exactly: Go's float64-to-JSON round trip is lossless
// (shortest-representation encoding), so any difference is a real
// divergence, not formatting noise.
func diffDecision(id string, idx int, want engine.Decision, got serve.Decision) *Divergence {
	d := &Divergence{Chip: id, ChipIndex: idx, Tick: want.Tick}
	switch {
	case got.Tick != want.Tick:
		d.Field = "tick"
		d.Served, d.Expected = float64(got.Tick), float64(want.Tick)
	case math.Float64bits(got.FreqGHz) != math.Float64bits(want.Freq):
		d.Field = "freq_ghz"
		d.Served, d.Expected = got.FreqGHz, want.Freq
	case math.Float64bits(got.RawGHz) != math.Float64bits(want.Raw):
		d.Field = "raw_ghz"
		d.Served, d.Expected = got.RawGHz, want.Raw
	default:
		return nil
	}
	return d
}

// pacer spaces request starts at a target rate across all dispatcher
// goroutines: request n may not start before origin + n/qps.
type pacer struct {
	qps    float64
	origin time.Time
	mu     sync.Mutex
	n      int
}

func newPacer(qps float64) *pacer {
	return &pacer{qps: qps, origin: time.Now()}
}

func (p *pacer) wait(ctx context.Context) {
	if p.qps <= 0 {
		return
	}
	p.mu.Lock()
	n := p.n
	p.n++
	p.mu.Unlock()
	due := p.origin.Add(time.Duration(float64(n) / p.qps * float64(time.Second)))
	if d := time.Until(due); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}
