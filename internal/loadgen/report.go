package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"strings"

	"github.com/hotgauge/boreas/internal/obs"
	"github.com/hotgauge/boreas/internal/serve"
)

// Report is one load-replay run's outcome, split along the determinism
// boundary: Replay is a pure function of (platform, controller, chips,
// ticks, seed) and is byte-identical at any batch size, inflight bound,
// QPS target or worker count; Timing is the wall-clock measurement and
// differs run to run by nature.
type Report struct {
	Replay ReplayReport `json:"replay"`
	Timing TimingReport `json:"timing"`
}

// ReplayReport is the deterministic section: what was decided and
// whether it matched the oracle.
type ReplayReport struct {
	// Platform and Controller label the run.
	Platform   string `json:"platform"`
	Controller string `json:"controller"`
	// Chips, Ticks and Seed reproduce the run: same triple, same report.
	Chips int    `json:"chips"`
	Ticks int    `json:"ticks"`
	Seed  uint64 `json:"seed"`
	// Decisions counts served decisions (= Chips * Ticks).
	Decisions int `json:"decisions"`
	// Divergences counts decisions that differed from the shadow oracle
	// in any field. The harness's acceptance invariant is zero.
	Divergences int `json:"divergences"`
	// FirstDivergence details the earliest divergence, if any.
	FirstDivergence *Divergence `json:"first_divergence,omitempty"`
	// Digest is the SHA-256 over the full served decision stream
	// ((chip, tick, freq bits, raw bits) in lockstep order) — two runs
	// served the same decisions iff their digests match.
	Digest string `json:"digest"`
	// AvgFreq / WorstSeverity / TotalIncursions aggregate the simulated
	// consequence of the served decisions across the fleet, with the
	// same semantics as engine.FleetResult.
	AvgFreq         float64 `json:"avg_freq_ghz"`
	WorstSeverity   float64 `json:"worst_severity"`
	TotalIncursions int     `json:"total_incursions"`
}

// Divergence pinpoints one decision where the daemon and the in-process
// oracle disagreed.
type Divergence struct {
	// Chip is the wire chip ID; ChipIndex its fleet index.
	Chip      string `json:"chip"`
	ChipIndex int    `json:"chip_index"`
	// Tick is the decision index the disagreement occurred at.
	Tick int `json:"tick"`
	// Field names the first differing field (tick, freq_ghz, raw_ghz).
	Field string `json:"field"`
	// Served and Expected are the daemon's and the oracle's values.
	Served   float64 `json:"served"`
	Expected float64 `json:"expected"`
}

// TimingReport is the nondeterministic section: how fast the daemon
// served the deterministic decision stream.
type TimingReport struct {
	// DurationSec is the measured wall-clock run time.
	DurationSec float64 `json:"duration_sec"`
	// Requests counts HTTP round trips; QPS is Requests/DurationSec.
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	// DecisionsPerSec is the served decision throughput (QPS * batch
	// fill); PerDecisionMicros its inverse in microseconds.
	DecisionsPerSec   float64 `json:"decisions_per_sec"`
	PerDecisionMicros float64 `json:"per_decision_us"`
	// Latency is the request round-trip percentile table from the merged
	// per-dispatcher HDR histograms.
	Latency obs.LatencySummary `json:"latency"`
	// Batch, MaxInflight and TargetQPS echo the load shape; Batch is the
	// resolved (defaulted) observations-per-request.
	Batch       int     `json:"batch"`
	MaxInflight int     `json:"max_inflight"`
	TargetQPS   float64 `json:"target_qps"`
	// InProcessServer records whether the run booted its own daemon.
	InProcessServer bool `json:"in_process_server"`
}

// JSON renders the full report, indented, with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// JSON renders only the deterministic replay section — the bytes the
// loadtest smoke compares across differently-concurrent runs.
func (r *ReplayReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Render formats the report for a terminal: the replay verdict, the
// throughput line, and the latency percentile table.
func (r *Report) Render() string {
	var b strings.Builder
	rp, tm := &r.Replay, &r.Timing
	fmt.Fprintf(&b, "loadtest: %s / %s, %d chips x %d ticks, seed %d\n",
		rp.Platform, rp.Controller, rp.Chips, rp.Ticks, rp.Seed)
	target := "external daemon"
	if tm.InProcessServer {
		target = "in-process server"
	}
	fmt.Fprintf(&b, "target:   %s, batch %d, inflight %s, qps target %s\n",
		target, tm.Batch, orUnbounded(tm.MaxInflight), orUnpaced(tm.TargetQPS))
	fmt.Fprintf(&b, "replay:   %d decisions, digest %s\n", rp.Decisions, shortDigest(rp.Digest))
	if rp.Divergences == 0 {
		fmt.Fprintf(&b, "oracle:   0 divergences — served decisions are bit-identical to in-process sessions\n")
	} else {
		d := rp.FirstDivergence
		fmt.Fprintf(&b, "oracle:   %d DIVERGENCES — first at %s tick %d field %s: served %v, expected %v\n",
			rp.Divergences, d.Chip, d.Tick, d.Field, d.Served, d.Expected)
	}
	fmt.Fprintf(&b, "fleet:    avg freq %.4f GHz, worst severity %.4f, incursions %d\n",
		rp.AvgFreq, rp.WorstSeverity, rp.TotalIncursions)
	fmt.Fprintf(&b, "timing:   %.2fs wall, %d requests, %.0f req/s, %.0f decisions/s (%.1f us/decision)\n",
		tm.DurationSec, tm.Requests, tm.QPS, tm.DecisionsPerSec, tm.PerDecisionMicros)
	l := tm.Latency
	fmt.Fprintf(&b, "latency:  %10s %10s %10s %10s %10s %10s\n", "mean", "p50", "p90", "p99", "p99.9", "max")
	fmt.Fprintf(&b, "          %9.1fus %9.1fus %9.1fus %9.1fus %9.1fus %9.1fus\n",
		l.MeanMicros, l.P50Micros, l.P90Micros, l.P99Micros, l.P999Micros, l.MaxMicros)
	return b.String()
}

func orUnbounded(n int) string {
	if n == 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%d", n)
}

func orUnpaced(qps float64) string {
	if qps == 0 {
		return "unpaced"
	}
	return fmt.Sprintf("%.0f", qps)
}

func shortDigest(d string) string {
	if len(d) > 16 {
		return d[:16] + "…"
	}
	return d
}

// replayDigest folds the served decision stream into one SHA-256: chip
// index, tick and the exact float bits of both frequencies, in lockstep
// order. Any reordering, dropped decision or bit flip changes the hex.
type replayDigest struct {
	h hash.Hash
}

func newReplayDigest() *replayDigest {
	return &replayDigest{h: sha256.New()}
}

func (d *replayDigest) add(chipIdx int, dec serve.Decision) {
	var buf [24]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(chipIdx))
	binary.BigEndian.PutUint32(buf[4:], uint32(dec.Tick))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(dec.FreqGHz))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(dec.RawGHz))
	d.h.Write(buf[:])
}

func (d *replayDigest) hex() string {
	return hex.EncodeToString(d.h.Sum(nil))
}
