package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1e-6, 1e-3, 1})
	h.Observe(500 * time.Nanosecond) // <= 1us
	h.Observe(1 * time.Microsecond)  // boundary: <= 1us
	h.Observe(2 * time.Microsecond)  // <= 1ms
	h.Observe(time.Millisecond)      // boundary: <= 1ms
	h.Observe(2 * time.Millisecond)  // <= 1s
	h.Observe(2 * time.Second)       // overflow

	s := h.Snapshot()
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	wantSum := (500*time.Nanosecond + time.Microsecond + 2*time.Microsecond +
		time.Millisecond + 2*time.Millisecond + 2*time.Second).Seconds()
	if s.SumSeconds != wantSum {
		t.Errorf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
}

func TestMetricsRecordDecision(t *testing.T) {
	m := NewMetrics()
	m.RecordDecision(3.75, 3.5, false, time.Microsecond)  // throttle
	m.RecordDecision(3.5, 3.75, false, time.Microsecond)  // climb
	m.RecordDecision(3.75, 3.75, false, time.Microsecond) // hold
	m.RecordDecision(3.75, 3.5, true, time.Microsecond)   // throttle + clamp
	m.AddDecisions(10, 4, 3, 3, 1)

	s := m.Snapshot()
	if s.Decisions != 14 || s.Throttles != 6 || s.Climbs != 4 || s.Holds != 4 || s.Clamps != 2 {
		t.Fatalf("snapshot counters wrong: %+v", s)
	}
	if s.DecideLatency.Count != 4 {
		t.Fatalf("latency count = %d, want 4", s.DecideLatency.Count)
	}
}

// TestSnapshotJSONSafe pins the contract the serving layer depends on:
// a snapshot always marshals (no ±Inf or NaN anywhere) and round-trips.
func TestSnapshotJSONSafe(t *testing.T) {
	m := NewMetrics()
	m.Requests.Add(3)
	m.RecordDecision(4.0, 3.75, true, 80*time.Microsecond)
	m.RecordDecision(3.75, 3.75, false, 2*time.Hour) // lands in the +Inf overflow bucket
	s := m.Snapshot()
	s.Sessions = 2

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot does not unmarshal: %v", err)
	}
	if back.Decisions != s.Decisions || back.Sessions != 2 ||
		back.DecideLatency.Count != s.DecideLatency.Count ||
		back.DecideLatency.SumSeconds != s.DecideLatency.SumSeconds {
		t.Fatalf("round trip changed the snapshot: %+v vs %+v", back, s)
	}
	for _, bound := range back.DecideLatency.BoundsSeconds {
		if math.IsInf(bound, 0) || math.IsNaN(bound) {
			t.Fatalf("non-finite bucket bound %v escaped into the snapshot", bound)
		}
	}
}

func TestPromRendering(t *testing.T) {
	m := NewMetrics()
	m.Requests.Add(2)
	m.RecordDecision(3.75, 3.5, false, 3*time.Microsecond)
	s := m.Snapshot()
	text := s.Prom("boreas")
	for _, want := range []string{
		"boreas_requests_total 2",
		"boreas_decisions_total 1",
		"boreas_throttles_total 1",
		`boreas_decide_latency_seconds_bucket{le="+Inf"} 1`,
		"boreas_decide_latency_seconds_count 1",
		"# TYPE boreas_decide_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prom output missing %q:\n%s", want, text)
		}
	}
	// Bucket counts must be cumulative: every le bucket at or above 5us
	// already contains the 3us observation.
	if !strings.Contains(text, `boreas_decide_latency_seconds_bucket{le="5e-06"} 1`) {
		t.Errorf("cumulative bucket missing:\n%s", text)
	}
	if s.Render() == "" {
		t.Error("text rendering is empty")
	}
}
