package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HDR layout constants. Values are recorded in integer nanoseconds on a
// log-linear grid in the style of HdrHistogram: each power-of-two
// magnitude is split into 2^hdrSubBits linear sub-buckets, so the
// relative quantization error is bounded by 2^-hdrSubBits (~1.6%) at
// every scale from 1 ns to about an hour.
const (
	// hdrSubBits is the sub-bucket resolution: 64 linear sub-buckets per
	// power-of-two magnitude.
	hdrSubBits = 6
	hdrSub     = 1 << hdrSubBits
	// hdrMaxMagnitude is the highest tracked power-of-two exponent.
	// Values of 2^(hdrMaxMagnitude+1) ns and above (~73 minutes) land in
	// the overflow bucket — far beyond any plausible decision latency,
	// but a load test must never lose an observation.
	hdrMaxMagnitude = 41
	// hdrSlots is the total tracked bucket count: one exact slot per
	// value below hdrSub, then hdrSub sub-buckets per magnitude.
	hdrSlots = hdrSub + (hdrMaxMagnitude-hdrSubBits+1)*hdrSub
)

// HDRMaxTrackable is the largest duration the HDR histogram resolves
// into a bucket; anything longer is counted in the overflow bucket.
const HDRMaxTrackable = time.Duration(1)<<(hdrMaxMagnitude+1) - 1

// hdrIndex maps a non-negative nanosecond value to its bucket slot.
func hdrIndex(v int64) int {
	if v < hdrSub {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= hdrSubBits
	sub := (v - 1<<m) >> (m - hdrSubBits)
	return hdrSub + (m-hdrSubBits)*hdrSub + int(sub)
}

// hdrValueAt returns the highest nanosecond value mapping to a slot —
// the representative a quantile query reports, so quantiles always
// over- rather than under-estimate (by at most one sub-bucket width).
func hdrValueAt(idx int) int64 {
	if idx < hdrSub {
		return int64(idx)
	}
	m := idx/hdrSub - 1 + hdrSubBits
	sub := int64(idx % hdrSub)
	width := int64(1) << (m - hdrSubBits)
	return 1<<m + sub*width + width - 1
}

// HDRHistogram is a multi-resolution latency histogram: log-linear
// buckets give ~1.6% relative resolution across nine decades (1 ns to
// ~1 h), so one histogram reports a faithful p50 and a faithful p99.9
// without choosing bucket bounds up front. Record is lock-free and
// allocation-free; all methods are safe for concurrent use. The zero
// value is NOT ready — build with NewHDRHistogram.
//
// The load-replay harness keeps one histogram per dispatcher goroutine
// and merges the snapshots (HDRSnapshot.Merge), so recording never
// contends across workers; a single shared instance is also safe, just
// slower under heavy parallelism.
type HDRHistogram struct {
	counts   []atomic.Uint64
	overflow atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// NewHDRHistogram returns an empty histogram.
func NewHDRHistogram() *HDRHistogram {
	return &HDRHistogram{counts: make([]atomic.Uint64, hdrSlots)}
}

// Record adds one duration. Negative durations clamp to zero; durations
// beyond HDRMaxTrackable land in the overflow bucket but still count
// toward Count, Sum and Max.
func (h *HDRHistogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if v > int64(HDRMaxTrackable) {
		h.overflow.Add(1)
	} else {
		h.counts[hdrIndex(v)].Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(v)
	for {
		cur := h.maxNanos.Load()
		if v <= cur || h.maxNanos.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot captures the histogram state. Under concurrent Record
// traffic each counter is individually exact but the set may not
// correspond to one instant; merge and quantile math tolerate that.
func (h *HDRHistogram) Snapshot() HDRSnapshot {
	s := HDRSnapshot{
		Counts:   make([]uint64, len(h.counts)),
		Overflow: h.overflow.Load(),
		Count:    h.count.Load(),
		SumNanos: h.sumNanos.Load(),
		MaxNanos: h.maxNanos.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HDRSnapshot is the point-in-time state of an HDRHistogram: a plain
// mergeable value. The bucket array is an implementation-defined dense
// layout — render it through Quantile/Summary rather than directly.
type HDRSnapshot struct {
	Counts   []uint64
	Overflow uint64
	Count    uint64
	SumNanos int64
	MaxNanos int64
}

// EmptyHDRSnapshot returns a zero-observation snapshot sized for Merge.
func EmptyHDRSnapshot() HDRSnapshot {
	return HDRSnapshot{Counts: make([]uint64, hdrSlots)}
}

// Merge folds another snapshot into s. Snapshots from any two
// HDRHistograms are always layout-compatible (the grid is a package
// constant); merging a zero-value snapshot is a no-op.
func (s *HDRSnapshot) Merge(o HDRSnapshot) error {
	if len(o.Counts) == 0 {
		return nil
	}
	if len(s.Counts) == 0 {
		s.Counts = make([]uint64, hdrSlots)
	}
	if len(s.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: merging HDR snapshots with %d and %d buckets", len(s.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Overflow += o.Overflow
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if o.MaxNanos > s.MaxNanos {
		s.MaxNanos = o.MaxNanos
	}
	return nil
}

// Quantile returns the value at or below which a fraction q of the
// observations fall, as a duration. q is clamped to [0, 1]; an empty
// snapshot returns 0. Observations in the overflow bucket report the
// recorded maximum (the only exact value known beyond the grid).
func (s HDRSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Ceil semantics: the q-quantile is the smallest value with at
	// least ceil(q*count) observations at or below it.
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			return time.Duration(hdrValueAt(i))
		}
	}
	return time.Duration(s.MaxNanos)
}

// Mean returns the exact mean of the recorded durations (the sum is
// tracked in integer nanoseconds, outside the bucket grid).
func (s HDRSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}

// Max returns the largest recorded duration, exactly.
func (s HDRSnapshot) Max() time.Duration { return time.Duration(s.MaxNanos) }

// LatencySummary is the compact JSON-safe percentile table reports
// embed: microsecond-valued so the numbers read directly in the units
// decision latency lives in.
type LatencySummary struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`
	MaxMicros  float64 `json:"max_us"`
}

// Summary reduces the snapshot to its percentile table.
func (s HDRSnapshot) Summary() LatencySummary {
	micros := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return LatencySummary{
		Count:      s.Count,
		MeanMicros: micros(s.Mean()),
		P50Micros:  micros(s.Quantile(0.50)),
		P90Micros:  micros(s.Quantile(0.90)),
		P99Micros:  micros(s.Quantile(0.99)),
		P999Micros: micros(s.Quantile(0.999)),
		MaxMicros:  micros(s.Max()),
	}
}
