// Package obs is the observability layer of the serving stack: atomic
// request/decision counters, a fixed-bucket latency histogram, and a
// JSON-safe Snapshot that both the HTTP /metrics endpoint and the
// fleet/experiment CLIs render.
//
// The package deliberately depends on nothing but the standard library
// (and not even the clock): callers time their own operations and hand
// durations in, so tests are free of time-of-day dependence and the
// recording path stays allocation-free. All recorders are safe for
// concurrent use; Snapshot is a plain value safe to marshal, compare
// and render.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the histogram bucket upper bounds in seconds
// (1 us to 1 s, roughly 1-2.5-5 per decade). The final implicit bucket
// is +Inf; keeping the explicit bounds finite keeps every Snapshot
// field representable in JSON.
func DefaultLatencyBounds() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1,
	}
}

// Histogram is a fixed-bucket latency histogram with atomic counters.
// The zero value is unusable; build one with NewHistogram. Observe is
// lock-free and allocation-free.
type Histogram struct {
	// bounds are the finite bucket upper bounds, ascending. counts has
	// len(bounds)+1 entries; the last one is the +Inf overflow bucket.
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumNanos accumulates total observed time in integer nanoseconds,
	// so concurrent adds stay exact without a float CAS loop.
	sumNanos atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket
// bounds in seconds (nil: DefaultLatencyBounds).
func NewHistogram(boundsSeconds []float64) *Histogram {
	if len(boundsSeconds) == 0 {
		boundsSeconds = DefaultLatencyBounds()
	}
	bounds := append([]float64(nil), boundsSeconds...)
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	// Binary search inlined to stay allocation-free (sort.SearchFloat64s
	// takes the slice by interface in older toolchains; this is also the
	// hot path of every served decision).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < secs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// HistogramSnapshot is the JSON-safe point-in-time state of a Histogram:
// the bounds are finite (the +Inf overflow bucket is implicit as the
// final count), so encoding/json accepts every field.
type HistogramSnapshot struct {
	// BoundsSeconds are the finite bucket upper bounds.
	BoundsSeconds []float64 `json:"bounds_seconds"`
	// Counts[i] is the number of observations <= BoundsSeconds[i]; the
	// final extra entry counts observations above every bound.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// SumSeconds is the total observed time.
	SumSeconds float64 `json:"sum_seconds"`
}

// Snapshot captures the histogram state. Under concurrent Observe
// traffic the bucket counts are each individually exact but may not sum
// to a single instant's Count; metrics scrapes tolerate that by design.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsSeconds: append([]float64(nil), h.bounds...),
		Counts:        make([]uint64, len(h.counts)),
		Count:         h.count.Load(),
		SumSeconds:    time.Duration(h.sumNanos.Load()).Seconds(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Metrics is the serving layer's counter set. All fields are safe for
// concurrent use; the zero value needs Init (or NewMetrics) to size the
// latency histogram.
type Metrics struct {
	// Requests counts HTTP requests accepted by the decision service;
	// BadRequests counts the subset rejected as malformed (4xx).
	Requests, BadRequests atomic.Uint64
	// Decisions counts Session.Decide calls served. Throttles, Climbs
	// and Holds partition Decisions by the commanded direction; Clamps
	// counts decisions whose raw controller output had to be clamped to
	// a legal operating point.
	Decisions, Throttles, Climbs, Holds, Clamps atomic.Uint64
	// SessionsCreated and SessionsEvicted track registry churn
	// (evictions split by cause: idle TTL vs capacity LRU).
	SessionsCreated, EvictedIdle, EvictedLRU atomic.Uint64

	// DecideLatency is the per-decision service time distribution.
	DecideLatency *Histogram
}

// NewMetrics returns a Metrics with the default latency buckets.
func NewMetrics() *Metrics {
	return &Metrics{DecideLatency: NewHistogram(nil)}
}

// RecordDecision folds one decision into the counters: prev and next
// are the operating frequencies before and after the decision, clamped
// reports whether the raw controller output was clamped, d is the
// decide service time.
func (m *Metrics) RecordDecision(prev, next float64, clamped bool, d time.Duration) {
	m.Decisions.Add(1)
	switch {
	case next < prev:
		m.Throttles.Add(1)
	case next > prev:
		m.Climbs.Add(1)
	default:
		m.Holds.Add(1)
	}
	if clamped {
		m.Clamps.Add(1)
	}
	if m.DecideLatency != nil {
		m.DecideLatency.Observe(d)
	}
}

// AddDecisions folds pre-aggregated decision counts in (the fleet and
// experiment CLIs render campaign results through the same Snapshot the
// daemon serves on /metrics).
func (m *Metrics) AddDecisions(decisions, throttles, climbs, holds, clamps uint64) {
	m.Decisions.Add(decisions)
	m.Throttles.Add(throttles)
	m.Climbs.Add(climbs)
	m.Holds.Add(holds)
	m.Clamps.Add(clamps)
}

// Snapshot is the JSON-safe point-in-time state of a Metrics. Every
// field is finite, so encoding/json accepts it as-is.
type Snapshot struct {
	Requests    uint64 `json:"requests"`
	BadRequests uint64 `json:"bad_requests"`

	Decisions uint64 `json:"decisions"`
	Throttles uint64 `json:"throttles"`
	Climbs    uint64 `json:"climbs"`
	Holds     uint64 `json:"holds"`
	Clamps    uint64 `json:"clamps"`

	SessionsCreated uint64 `json:"sessions_created"`
	EvictedIdle     uint64 `json:"evicted_idle"`
	EvictedLRU      uint64 `json:"evicted_lru"`
	// Sessions is the live session count at snapshot time (filled by the
	// registry, not the counters).
	Sessions int `json:"sessions"`

	DecideLatency HistogramSnapshot `json:"decide_latency"`
}

// Snapshot captures the counters.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Requests:        m.Requests.Load(),
		BadRequests:     m.BadRequests.Load(),
		Decisions:       m.Decisions.Load(),
		Throttles:       m.Throttles.Load(),
		Climbs:          m.Climbs.Load(),
		Holds:           m.Holds.Load(),
		Clamps:          m.Clamps.Load(),
		SessionsCreated: m.SessionsCreated.Load(),
		EvictedIdle:     m.EvictedIdle.Load(),
		EvictedLRU:      m.EvictedLRU.Load(),
	}
	if m.DecideLatency != nil {
		s.DecideLatency = m.DecideLatency.Snapshot()
	}
	return s
}

// Render formats the snapshot as the aligned text block the CLIs print.
func (s Snapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests  %10d (bad %d)\n", s.Requests, s.BadRequests)
	fmt.Fprintf(&b, "decisions %10d (throttle %d, climb %d, hold %d, clamped %d)\n",
		s.Decisions, s.Throttles, s.Climbs, s.Holds, s.Clamps)
	fmt.Fprintf(&b, "sessions  %10d live (created %d, evicted %d idle + %d lru)\n",
		s.Sessions, s.SessionsCreated, s.EvictedIdle, s.EvictedLRU)
	if s.DecideLatency.Count > 0 {
		mean := s.DecideLatency.SumSeconds / float64(s.DecideLatency.Count)
		fmt.Fprintf(&b, "decide    %10.1f us mean over %d decisions\n", mean*1e6, s.DecideLatency.Count)
	}
	return b.String()
}

// Prom renders the snapshot in the Prometheus text exposition format
// under the given metric prefix (e.g. "boreas"). The +Inf histogram
// bucket exists only here, as the conventional le="+Inf" label — the
// Snapshot itself stays JSON-safe.
func (s Snapshot) Prom(prefix string) string {
	var b strings.Builder
	counter := func(name string, v uint64) {
		fmt.Fprintf(&b, "# TYPE %s_%s counter\n%s_%s %d\n", prefix, name, prefix, name, v)
	}
	counter("requests_total", s.Requests)
	counter("bad_requests_total", s.BadRequests)
	counter("decisions_total", s.Decisions)
	counter("throttles_total", s.Throttles)
	counter("climbs_total", s.Climbs)
	counter("holds_total", s.Holds)
	counter("clamps_total", s.Clamps)
	counter("sessions_created_total", s.SessionsCreated)
	counter("sessions_evicted_idle_total", s.EvictedIdle)
	counter("sessions_evicted_lru_total", s.EvictedLRU)
	fmt.Fprintf(&b, "# TYPE %s_sessions gauge\n%s_sessions %d\n", prefix, prefix, s.Sessions)

	h := s.DecideLatency
	if len(h.Counts) == len(h.BoundsSeconds)+1 {
		fmt.Fprintf(&b, "# TYPE %s_decide_latency_seconds histogram\n", prefix)
		cum := uint64(0)
		for i, bound := range h.BoundsSeconds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_decide_latency_seconds_bucket{le=%q} %d\n", prefix, formatBound(bound), cum)
		}
		cum += h.Counts[len(h.Counts)-1]
		fmt.Fprintf(&b, "%s_decide_latency_seconds_bucket{le=\"+Inf\"} %d\n", prefix, cum)
		fmt.Fprintf(&b, "%s_decide_latency_seconds_sum %g\n", prefix, h.SumSeconds)
		fmt.Fprintf(&b, "%s_decide_latency_seconds_count %d\n", prefix, h.Count)
	}
	return b.String()
}

// formatBound renders a bucket bound the shortest exact way.
func formatBound(v float64) string { return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0") }
