package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHDRIndexRoundTrip pins the bucket geometry: every slot's
// representative value maps back to that slot, representatives are
// strictly increasing, and the relative quantization error is bounded
// by one sub-bucket (2^-6).
func TestHDRIndexRoundTrip(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < hdrSlots; i++ {
		v := hdrValueAt(i)
		if got := hdrIndex(v); got != i {
			t.Fatalf("hdrIndex(hdrValueAt(%d)) = %d", i, got)
		}
		if v <= prev {
			t.Fatalf("slot %d representative %d not above previous %d", i, v, prev)
		}
		prev = v
	}
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1e6, 1e9, int64(HDRMaxTrackable)} {
		idx := hdrIndex(v)
		rep := hdrValueAt(idx)
		if rep < v {
			t.Fatalf("value %d: representative %d underestimates", v, rep)
		}
		if v >= hdrSub && float64(rep-v) > float64(v)/float64(hdrSub) {
			t.Fatalf("value %d: representative %d off by more than 1/%d", v, rep, hdrSub)
		}
	}
}

// TestHDRHistogramTable drives the percentile math through its edge
// cases: empty histogram, a single observation, negative clamping, the
// overflow bucket, and a spread distribution.
func TestHDRHistogramTable(t *testing.T) {
	us := func(f float64) time.Duration { return time.Duration(f * float64(time.Microsecond)) }
	cases := []struct {
		name      string
		record    []time.Duration
		count     uint64
		p50, max  time.Duration
		maxRelErr float64 // tolerance on p50 (0 = exact)
	}{
		{name: "empty", record: nil, count: 0, p50: 0, max: 0},
		{name: "single", record: []time.Duration{us(250)}, count: 1, p50: us(250), max: us(250), maxRelErr: 1.0 / hdrSub},
		{name: "negative clamps to zero", record: []time.Duration{-time.Second}, count: 1, p50: 0, max: 0},
		{
			name:   "overflow bucket",
			record: []time.Duration{time.Millisecond, HDRMaxTrackable + time.Hour},
			count:  2,
			// p50 is the in-range observation; the overflowing one is
			// reported exactly through Max.
			p50: time.Millisecond, max: HDRMaxTrackable + time.Hour, maxRelErr: 1.0 / hdrSub,
		},
		{
			name: "uniform hundred",
			record: func() []time.Duration {
				ds := make([]time.Duration, 100)
				for i := range ds {
					ds[i] = time.Duration(i+1) * time.Microsecond
				}
				return ds
			}(),
			count: 100, p50: 50 * time.Microsecond, max: 100 * time.Microsecond, maxRelErr: 1.0 / hdrSub,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHDRHistogram()
			for _, d := range tc.record {
				h.Record(d)
			}
			s := h.Snapshot()
			if s.Count != tc.count {
				t.Fatalf("Count = %d, want %d", s.Count, tc.count)
			}
			if got := s.Max(); got != tc.max {
				t.Fatalf("Max = %v, want %v", got, tc.max)
			}
			got := s.Quantile(0.5)
			if tc.maxRelErr == 0 {
				if got != tc.p50 {
					t.Fatalf("p50 = %v, want exactly %v", got, tc.p50)
				}
			} else if err := math.Abs(float64(got-tc.p50)) / float64(tc.p50); err > tc.maxRelErr {
				t.Fatalf("p50 = %v, want %v within %.2g relative", got, tc.p50, tc.maxRelErr)
			}
			if s.Count > 0 && s.Quantile(1) != s.Max() && s.Overflow == 0 {
				// p100 must land in the highest occupied bucket, whose
				// representative bounds the true max from above.
				if s.Quantile(1) < s.Max() {
					t.Fatalf("p100 %v below max %v", s.Quantile(1), s.Max())
				}
			}
		})
	}
}

func TestHDROverflowCounted(t *testing.T) {
	h := NewHDRHistogram()
	h.Record(HDRMaxTrackable + 1)
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Overflow != 1 {
		t.Fatalf("Overflow = %d, want 1", s.Overflow)
	}
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2 (overflow still counts)", s.Count)
	}
	// The overflow observation dominates every high quantile and is
	// reported via the exact max.
	if got := s.Quantile(0.99); got != s.Max() {
		t.Fatalf("p99 = %v, want the overflow max %v", got, s.Max())
	}
}

func TestHDRSnapshotMerge(t *testing.T) {
	a, b := NewHDRHistogram(), NewHDRHistogram()
	whole := NewHDRHistogram()
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * 3 * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	merged := EmptyHDRSnapshot()
	if err := merged.Merge(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(b.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.SumNanos != want.SumNanos || merged.MaxNanos != want.MaxNanos {
		t.Fatalf("merged totals %+v, want %+v", merged.Summary(), want.Summary())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q%.3f: merged %v, whole %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
	// Merging an unsized (zero-value) snapshot is a no-op.
	if err := merged.Merge(HDRSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if merged.Count != want.Count {
		t.Fatal("no-op merge changed the count")
	}
}

// TestHDRConcurrentRecordSnapshot hammers Record from many goroutines
// while snapshots are taken concurrently (run under -race in the tier-1
// gate). The final snapshot must account for every observation exactly.
func TestHDRConcurrentRecordSnapshot(t *testing.T) {
	h := NewHDRHistogram()
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Quantile(0.99) < 0 {
					panic("negative quantile")
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Record(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum+s.Overflow != s.Count {
		t.Fatalf("bucket sum %d + overflow %d != count %d", sum, s.Overflow, s.Count)
	}
	if s.Max() != time.Duration(goroutines*perG-1) {
		t.Fatalf("Max = %v, want %v", s.Max(), time.Duration(goroutines*perG-1))
	}
}
