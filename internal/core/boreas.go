// Package core implements Boreas itself: a gradient-boosted-tree
// severity predictor trained on hardware telemetry, and the guardbanded
// DVFS controller that uses it (Fig 3 of the paper).
//
// Every 960 us the controller receives the last interval's performance
// counters and one delayed thermal-sensor reading, asks the model for the
// maximum Hotspot-Severity expected over the next interval, and moves the
// frequency one 250 MHz step down (prediction above threshold), up (the
// what-if prediction at the next step stays below threshold) or holds.
// The threshold is 1.0 minus a guardband: ML00/ML05/ML10 in the paper.
package core

import (
	"fmt"
	"math"
	"strings"

	"github.com/hotgauge/boreas/internal/arch"
	"github.com/hotgauge/boreas/internal/control"
	"github.com/hotgauge/boreas/internal/ml/gbt"
	"github.com/hotgauge/boreas/internal/power"
	"github.com/hotgauge/boreas/internal/telemetry"
)

// Predictor wraps a trained GBT model with the feature plumbing needed at
// controller time: extraction from raw counters and the what-if transform
// for evaluating a hypothetical higher frequency.
type Predictor struct {
	model *gbt.Model
	// compiled is the flat-tree form of model, the allocation-free hot
	// path for every prediction (bit-identical to the pointer walk). Nil
	// only when compilation failed, in which case the pointer walk is
	// used.
	compiled *gbt.Compiled
	// cols[i] is the index into the full 78-feature vector for model
	// feature i.
	cols []int
	// scalable[i] marks model features that scale with frequency
	// (cycle and event counts); rates, duty cycles, temperatures and
	// fractions are frequency-invariant.
	scalable []bool
	// freqCol and voltCol are the model-feature positions of the
	// operating-point features, or -1 when the model does not use them.
	freqCol, voltCol int
	// VF is the operating curve what-if voltages are looked up on. The
	// zero value selects the default Table I curve.
	VF power.VFCurve

	// Per-instance scratch reused across predictions so the decide path
	// is allocation-free. A Predictor is therefore NOT safe for
	// concurrent use; run concurrent chips on Clone()s (the trained
	// model and its compiled form are immutable and shared).
	full []float64
	row  []float64
}

// vf resolves the predictor's operating curve.
func (p *Predictor) vf() power.VFCurve {
	if p.VF.IsZero() {
		return power.DefaultVF()
	}
	return p.VF
}

// NewPredictor binds a trained model to the telemetry schema. The model's
// FeatureNames must all exist in the full feature vocabulary.
func NewPredictor(model *gbt.Model) (*Predictor, error) {
	if model == nil || len(model.Trees) == 0 {
		return nil, fmt.Errorf("core: empty model")
	}
	p := &Predictor{model: model, freqCol: -1, voltCol: -1}
	for i, name := range model.FeatureNames {
		col, err := telemetry.FeatureIndex(name)
		if err != nil {
			return nil, fmt.Errorf("core: model feature %q not in telemetry schema", name)
		}
		p.cols = append(p.cols, col)
		p.scalable = append(p.scalable, isCountFeature(name))
		switch name {
		case telemetry.FreqFeature:
			p.freqCol = i
		case "voltage":
			p.voltCol = i
		}
	}
	// Compile failure (a malformed hand-built ensemble) is not fatal:
	// predictions fall back to the pointer walk, which accepts anything
	// Predict accepts.
	if c, err := model.Compile(); err == nil {
		p.compiled = c
	}
	return p, nil
}

// Clone returns an independent predictor sharing the trained model and
// its compiled form (immutable at predict time) with fresh private
// scratch, safe to use concurrently with p.
func (p *Predictor) Clone() *Predictor {
	n := *p
	n.full, n.row = nil, nil
	return &n
}

// isCountFeature reports whether a feature is a per-interval event count,
// which scales roughly with frequency when the same phase re-runs at a
// different operating point.
func isCountFeature(name string) bool {
	switch name {
	case telemetry.SensorFeature, telemetry.FreqFeature, "voltage", "effective_fp_width",
		"ipc", "cpi":
		return false
	}
	for _, suffix := range []string{"_duty_cycle", "_rate", "_fraction", "_mpki", "_ratio", "_per_cycle"} {
		if strings.HasSuffix(name, suffix) {
			return false
		}
	}
	return true
}

// Model returns the underlying GBT ensemble.
func (p *Predictor) Model() *gbt.Model { return p.model }

// Compiled returns the flat-tree form of the model serving as the hot
// path (nil if compilation failed and the pointer walk is in use).
func (p *Predictor) Compiled() *gbt.Compiled { return p.compiled }

// features builds the model's input row from raw telemetry into the
// predictor's scratch buffers.
func (p *Predictor) features(k arch.Counters, sensorTemp float64) []float64 {
	p.full = telemetry.ExtractInto(p.full, k, sensorTemp)
	if cap(p.row) < len(p.cols) {
		p.row = make([]float64, len(p.cols))
	}
	p.row = p.row[:len(p.cols)]
	for i, c := range p.cols {
		p.row[i] = p.full[c]
	}
	return p.row
}

// predictRow scores one feature row on the compiled hot path (pointer
// walk when compilation failed).
func (p *Predictor) predictRow(row []float64) float64 {
	if p.compiled != nil {
		return p.compiled.Predict(row)
	}
	return p.model.Predict(row)
}

// predictRowChecked is predictRow with the non-finite input screen.
func (p *Predictor) predictRowChecked(row []float64) (float64, error) {
	if p.compiled != nil {
		return p.compiled.PredictChecked(row)
	}
	return p.model.PredictChecked(row)
}

// Predict returns the predicted max severity over the next interval if
// the system keeps running at its current frequency.
func (p *Predictor) Predict(k arch.Counters, sensorTemp float64) float64 {
	return p.predictRow(p.features(k, sensorTemp))
}

// PredictChecked is Predict with the model's non-finite input screen: a
// NaN or ±Inf anywhere in the extracted feature row (corrupted counters,
// a dead sensor) is an error instead of a silently pinned tree routing.
// This is the entry point controllers use to fail safe on faulty
// telemetry, consistent with the control.GuardedController screens.
func (p *Predictor) PredictChecked(k arch.Counters, sensorTemp float64) (float64, error) {
	return p.predictRowChecked(p.features(k, sensorTemp))
}

// PredictAt returns the what-if prediction for running the next interval
// at newFreq instead of the frequency the counters were collected at:
// count features are scaled by the frequency ratio (the behaviour of the
// same phase at a different clock), rates and the sensor reading are
// carried over, and the operating-point features are rewritten.
func (p *Predictor) PredictAt(k arch.Counters, sensorTemp, newFreq float64) float64 {
	return p.predictRow(p.whatIfRow(k, sensorTemp, newFreq))
}

// PredictAtChecked is PredictAt with the non-finite input screen of
// PredictChecked.
func (p *Predictor) PredictAtChecked(k arch.Counters, sensorTemp, newFreq float64) (float64, error) {
	return p.predictRowChecked(p.whatIfRow(k, sensorTemp, newFreq))
}

// whatIfRow builds the what-if feature row for running the next interval
// at newFreq.
func (p *Predictor) whatIfRow(k arch.Counters, sensorTemp, newFreq float64) []float64 {
	row := p.features(k, sensorTemp)
	if k.FrequencyGHz > 0 && newFreq != k.FrequencyGHz {
		ratio := newFreq / k.FrequencyGHz
		for i, s := range p.scalable {
			if s {
				row[i] *= ratio
			}
		}
	}
	if p.freqCol >= 0 {
		row[p.freqCol] = newFreq
	}
	if p.voltCol >= 0 {
		row[p.voltCol] = p.vf().VoltageFor(newFreq)
	}
	return row
}

// Controller is the Boreas frequency controller (§V-A): predict severity,
// compare against 1.0 minus the guardband, and step the frequency.
type Controller struct {
	Pred *Predictor
	// Guardband is the fractional safety margin: 0 (ML00), 0.05 (ML05),
	// 0.10 (ML10). The decision threshold is 1 - Guardband.
	Guardband float64
	// VF is the operating curve the controller steps along. The zero
	// value selects the default Table I curve.
	VF power.VFCurve
}

// vf resolves the controller's operating curve.
func (c *Controller) vf() power.VFCurve {
	if c.VF.IsZero() {
		return power.DefaultVF()
	}
	return c.VF
}

// NewController builds an ML-xx controller.
func NewController(pred *Predictor, guardband float64) (*Controller, error) {
	if pred == nil {
		return nil, fmt.Errorf("core: nil predictor")
	}
	if guardband < 0 || guardband >= 1 {
		return nil, fmt.Errorf("core: guardband %g outside [0,1)", guardband)
	}
	return &Controller{Pred: pred, Guardband: guardband}, nil
}

// Name implements control.Controller ("ML00", "ML05", "ML10").
func (c *Controller) Name() string { return fmt.Sprintf("ML%02.0f", c.Guardband*100) }

// Reset implements control.Controller.
func (c *Controller) Reset() {}

// Clone implements control.Cloneable: the trained model is shared, the
// predictor's scratch buffers are private to the new instance.
func (c *Controller) Clone() control.Controller {
	n := *c
	n.Pred = c.Pred.Clone()
	return &n
}

// Decide implements control.Controller. Non-finite telemetry fails safe
// with a one-step throttle: a NaN routes through every tree comparison
// as "false" and would otherwise silently produce an arbitrary (usually
// optimistic) severity estimate. The sensor screen catches the common
// case before feature extraction; PredictChecked catches NaN/Inf smuggled
// in through corrupted performance counters (the faults-campaign failure
// modes), consistent with the control.GuardedController anomaly screens.
func (c *Controller) Decide(obs control.Observation) float64 {
	vf := c.vf()
	threshold := 1.0 - c.Guardband
	cur := obs.CurrentFreq
	if math.IsNaN(obs.SensorTemp) || math.IsInf(obs.SensorTemp, 0) {
		return cur - vf.StepGHz
	}
	sev, err := c.Pred.PredictChecked(obs.Counters, obs.SensorTemp)
	if err != nil || sev >= threshold {
		return cur - vf.StepGHz
	}
	next := cur + vf.StepGHz
	if next <= vf.MaxGHz()+1e-9 {
		whatIf, err := c.Pred.PredictAtChecked(obs.Counters, obs.SensorTemp, next)
		if err == nil && whatIf < threshold {
			return next
		}
	}
	return cur
}

var _ control.Controller = (*Controller)(nil)
