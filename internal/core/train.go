package core

import (
	"context"
	"fmt"

	"github.com/hotgauge/boreas/internal/ml/gbt"
	"github.com/hotgauge/boreas/internal/telemetry"
)

// TrainConfig describes a Boreas training run (Table II).
type TrainConfig struct {
	// Features is the model's input set; nil selects the paper's Table IV
	// top-20 attributes.
	Features []string
	// Params are the GBT hyper-parameters; the zero value selects the
	// paper's Table II configuration. The run-time knobs (Method, MaxBins,
	// Workers) are honoured even when the hyper-parameters are defaulted,
	// so selecting the histogram-binned trainer is just
	// Params{Method: gbt.MethodHist}.
	Params gbt.Params
}

// DefaultTrainConfig returns the paper's published configuration (Table
// II hyper-parameters over the Table IV feature set) plus a safety weight
// of 2 on the regression loss: underpredicting severity is weighted
// double, biasing the predictor toward an upper quantile. See DESIGN.md
// for why this substitution is needed (our thermal substrate has slower
// bulk dynamics than the paper's, so prediction errors at the boundary
// are costlier) and BenchmarkAblation_SafetyWeight for its effect.
func DefaultTrainConfig() TrainConfig {
	p := gbt.DefaultParams()
	p.SafetyWeight = 2
	return TrainConfig{
		Features: telemetry.TableIVFeatureNames(),
		Params:   p,
	}
}

// Train fits the Boreas severity predictor on a labelled telemetry
// dataset (full 78-feature schema or any superset of cfg.Features).
func Train(ds *telemetry.Dataset, cfg TrainConfig) (*Predictor, error) {
	return TrainContext(context.Background(), ds, cfg)
}

// TrainContext is Train with cancellation: the context is checked each
// boosting round, so SIGINT or a deadline stops a long train within one
// round instead of running to completion.
func TrainContext(ctx context.Context, ds *telemetry.Dataset, cfg TrainConfig) (*Predictor, error) {
	if cfg.Features == nil {
		cfg.Features = telemetry.TableIVFeatureNames()
	}
	if cfg.Params.NumTrees == 0 {
		method, bins, workers := cfg.Params.Method, cfg.Params.MaxBins, cfg.Params.Workers
		cfg.Params = gbt.DefaultParams()
		cfg.Params.Method, cfg.Params.MaxBins, cfg.Params.Workers = method, bins, workers
	}
	sel, err := ds.Select(cfg.Features)
	if err != nil {
		return nil, fmt.Errorf("core: selecting features: %w", err)
	}
	model, err := gbt.TrainContext(ctx, sel.X, sel.Y, sel.FeatureNames, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("core: training: %w", err)
	}
	return NewPredictor(model)
}

// Evaluate returns the model's MSE on a dataset (any schema containing
// the model's features).
func (p *Predictor) Evaluate(ds *telemetry.Dataset) (float64, error) {
	sel, err := ds.Select(p.model.FeatureNames)
	if err != nil {
		return 0, err
	}
	return p.model.MSE(sel.X, sel.Y), nil
}
