package core

import (
	"math"
	"testing"

	"github.com/hotgauge/boreas/internal/arch"
	"github.com/hotgauge/boreas/internal/control"
	"github.com/hotgauge/boreas/internal/engine"
	"github.com/hotgauge/boreas/internal/ml/gbt"
	"github.com/hotgauge/boreas/internal/rng"
	"github.com/hotgauge/boreas/internal/sim"
	"github.com/hotgauge/boreas/internal/telemetry"
	"github.com/hotgauge/boreas/internal/workload"
)

// syntheticDataset builds a small labelled dataset whose severity is a
// simple function of sensor temperature and ALU activity, so the model
// has clean signal to learn.
func syntheticDataset(seed uint64, n int) *telemetry.Dataset {
	r := rng.New(seed)
	ds := telemetry.NewDataset(telemetry.FullFeatureNames())
	for i := 0; i < n; i++ {
		f := 2.0 + 0.25*float64(r.Intn(13))
		cycles := f * 80000
		alu := r.Float64()
		temp := 45 + 55*r.Float64()
		k := arch.Counters{
			FrequencyGHz:          f,
			Voltage:               1,
			TotalCycles:           cycles,
			BusyCycles:            cycles * 0.6,
			CommittedInstructions: cycles * 0.8,
			CdbALUAccesses:        cycles * alu,
			ALUDutyCycle:          alu,
		}
		x := telemetry.Extract(k, temp)
		sev := math.Min(2, math.Max(0, (temp-45+25*alu*f/5)/70))
		wl := []string{"a", "b", "c", "d"}[i%4]
		if err := ds.Add(x, sev, wl); err != nil {
			panic(err)
		}
	}
	return ds
}

func fastParams() gbt.Params {
	return gbt.Params{NumTrees: 40, MaxDepth: 3, LearningRate: 0.3, Lambda: 1, MinChildWeight: 1}
}

func TestTrainAndEvaluate(t *testing.T) {
	ds := syntheticDataset(1, 4000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := pred.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.01 {
		t.Fatalf("training MSE %v too high for a learnable target", mse)
	}
}

func TestTrainDefaultsToTableIV(t *testing.T) {
	ds := syntheticDataset(2, 500)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pred.Model().FeatureNames); got != 20 {
		t.Fatalf("default feature set has %d features, want the Table IV 20", got)
	}
}

func TestDefaultTrainConfigMatchesPaper(t *testing.T) {
	cfg := DefaultTrainConfig()
	if cfg.Params.NumTrees != 223 || cfg.Params.MaxDepth != 3 || cfg.Params.LearningRate != 0.3 {
		t.Fatalf("Table II params wrong: %+v", cfg.Params)
	}
	if len(cfg.Features) != 20 {
		t.Fatalf("default features %d, want 20", len(cfg.Features))
	}
}

func TestPredictorRejectsBadModels(t *testing.T) {
	if _, err := NewPredictor(nil); err == nil {
		t.Fatal("expected nil-model error")
	}
	m := &gbt.Model{FeatureNames: []string{"not_a_feature"}, Trees: make([]gbt.Tree, 1)}
	m.Trees[0].Nodes = []gbt.Node{{Feature: -1}}
	if _, err := NewPredictor(m); err == nil {
		t.Fatal("expected unknown-feature error")
	}
}

func TestPredictMonotoneInTemperature(t *testing.T) {
	ds := syntheticDataset(3, 4000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	k := arch.Counters{FrequencyGHz: 4, Voltage: 1, TotalCycles: 320000,
		BusyCycles: 192000, CommittedInstructions: 256000,
		CdbALUAccesses: 160000, ALUDutyCycle: 0.5}
	cool := pred.Predict(k, 55)
	hot := pred.Predict(k, 88)
	if hot <= cool {
		t.Fatalf("severity should grow with temperature: %v vs %v", hot, cool)
	}
}

func TestPredictAtScalesWithFrequency(t *testing.T) {
	ds := syntheticDataset(4, 4000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	k := arch.Counters{FrequencyGHz: 3.75, Voltage: 0.9275, TotalCycles: 300000,
		BusyCycles: 180000, CommittedInstructions: 240000,
		CdbALUAccesses: 150000, ALUDutyCycle: 0.5}
	same := pred.PredictAt(k, 75, 3.75)
	if math.Abs(same-pred.Predict(k, 75)) > 1e-9 {
		t.Fatal("PredictAt at the same frequency should equal Predict")
	}
	up := pred.PredictAt(k, 75, 4.75)
	if up <= same {
		t.Fatalf("what-if at higher frequency should predict higher severity: %v vs %v", up, same)
	}
}

func TestIsCountFeatureClassification(t *testing.T) {
	counts := []string{"total_cycles", "committed_instructions", "cdb_alu_accesses", "dcache_read_misses"}
	invariants := []string{telemetry.SensorFeature, "ipc", "LSU_duty_cycle", "l2_miss_rate",
		"fp_instruction_fraction", "voltage", "dcache_mpki", "speculation_ratio", "alu_per_cycle"}
	for _, n := range counts {
		if !isCountFeature(n) {
			t.Errorf("%s should be a count feature", n)
		}
	}
	for _, n := range invariants {
		if isCountFeature(n) {
			t.Errorf("%s should be frequency-invariant", n)
		}
	}
}

func TestControllerGuardbands(t *testing.T) {
	ds := syntheticDataset(5, 3000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(nil, 0.05); err == nil {
		t.Fatal("expected nil-predictor error")
	}
	if _, err := NewController(pred, -0.1); err == nil {
		t.Fatal("expected guardband error")
	}
	if _, err := NewController(pred, 1.0); err == nil {
		t.Fatal("expected guardband error")
	}
	for g, want := range map[float64]string{0: "ML00", 0.05: "ML05", 0.10: "ML10"} {
		c, err := NewController(pred, g)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != want {
			t.Fatalf("name for guardband %v is %s, want %s", g, c.Name(), want)
		}
	}
}

func TestControllerDecisionDirections(t *testing.T) {
	ds := syntheticDataset(6, 4000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(pred, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(alu, f float64) arch.Counters {
		cycles := f * 80000
		return arch.Counters{FrequencyGHz: f, Voltage: 1, TotalCycles: cycles,
			BusyCycles: 0.6 * cycles, CommittedInstructions: 0.8 * cycles,
			CdbALUAccesses: alu * cycles, ALUDutyCycle: alu}
	}
	// Scorching: predicted severity near 1 -> throttle.
	hot := control.Observation{Counters: mk(0.95, 4.5), SensorTemp: 95, CurrentFreq: 4.5}
	if f := ctrl.Decide(hot); f >= 4.5 {
		t.Fatalf("hot decision %v, want a downward step", f)
	}
	// Frozen: severity ~0 even at the next step -> climb.
	cold := control.Observation{Counters: mk(0.05, 3.0), SensorTemp: 48, CurrentFreq: 3.0}
	if f := ctrl.Decide(cold); f <= 3.0 {
		t.Fatalf("cold decision %v, want an upward step", f)
	}
}

// TestControllerNonFiniteCountersFailSafe: NaN/Inf smuggled in through
// corrupted performance counters (not just the sensor) must produce the
// one-step fail-safe throttle, never a silent pinned-routing prediction.
func TestControllerNonFiniteCountersFailSafe(t *testing.T) {
	ds := syntheticDataset(8, 3000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(pred, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(mut func(*arch.Counters)) arch.Counters {
		k := arch.Counters{FrequencyGHz: 3.0, Voltage: 1, TotalCycles: 240000,
			BusyCycles: 144000, CommittedInstructions: 192000,
			CdbALUAccesses: 12000, ALUDutyCycle: 0.05}
		mut(&k)
		return k
	}
	// Sanity: the clean cold observation climbs.
	clean := control.Observation{Counters: mk(func(*arch.Counters) {}), SensorTemp: 48, CurrentFreq: 3.0}
	if f := ctrl.Decide(clean); f <= 3.0 {
		t.Fatalf("clean cold decision %v, want an upward step", f)
	}
	for name, mut := range map[string]func(*arch.Counters){
		"nan-cdb-alu":   func(k *arch.Counters) { k.CdbALUAccesses = math.NaN() },
		"inf-cycles":    func(k *arch.Counters) { k.TotalCycles = math.Inf(1) },
		"nan-committed": func(k *arch.Counters) { k.CommittedInstructions = math.NaN() },
	} {
		obs := control.Observation{Counters: mk(mut), SensorTemp: 48, CurrentFreq: 3.0}
		if f := ctrl.Decide(obs); f >= 3.0 {
			t.Errorf("%s: decision %v, want the fail-safe downward step", name, f)
		}
	}
	// PredictChecked surfaces the error directly.
	if _, err := pred.PredictChecked(mk(func(k *arch.Counters) { k.CdbALUAccesses = math.NaN() }), 48); err == nil {
		t.Fatal("PredictChecked accepted NaN counters")
	}
	if _, err := pred.PredictAtChecked(mk(func(k *arch.Counters) { k.CdbALUAccesses = math.NaN() }), 48, 3.25); err == nil {
		t.Fatal("PredictAtChecked accepted NaN counters")
	}
}

// TestTrainPreservesMethodKnobs: defaulted hyper-parameters must not
// wipe the run-time knobs (the histogram method in particular).
func TestTrainPreservesMethodKnobs(t *testing.T) {
	ds := syntheticDataset(9, 600)
	pred, err := Train(ds, TrainConfig{Params: gbt.Params{Method: gbt.MethodHist, MaxBins: 64}})
	if err != nil {
		t.Fatal(err)
	}
	p := pred.Model().Params
	if p.NumTrees != 223 || p.Method != gbt.MethodHist || p.MaxBins != 64 {
		t.Fatalf("method knobs lost when defaulting: %+v", p)
	}
}

func TestMoreGuardbandNeverFaster(t *testing.T) {
	// Property: for any observation, a larger guardband chooses a
	// frequency no higher than a smaller one.
	ds := syntheticDataset(7, 3000)
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	c00, _ := NewController(pred, 0)
	c05, _ := NewController(pred, 0.05)
	c10, _ := NewController(pred, 0.10)
	r := rng.New(11)
	for i := 0; i < 300; i++ {
		f := 2.0 + 0.25*float64(r.Intn(13))
		cycles := f * 80000
		alu := r.Float64()
		obs := control.Observation{
			Counters: arch.Counters{FrequencyGHz: f, Voltage: 1, TotalCycles: cycles,
				BusyCycles: 0.6 * cycles, CommittedInstructions: 0.8 * cycles,
				CdbALUAccesses: alu * cycles, ALUDutyCycle: alu},
			SensorTemp:  50 + 45*r.Float64(),
			CurrentFreq: f,
		}
		f00 := c00.Decide(obs)
		f05 := c05.Decide(obs)
		f10 := c10.Decide(obs)
		if f05 > f00+1e-9 || f10 > f05+1e-9 {
			t.Fatalf("guardband ordering violated at obs %d: %v/%v/%v", i, f00, f05, f10)
		}
	}
}

func TestEndToEndTinyPipeline(t *testing.T) {
	// Full integration on a reduced pipeline: build a small dataset, train
	// a small model, close the loop, and require zero incursions with a
	// conservative guardband.
	if testing.Short() {
		t.Skip("integration test")
	}
	simCfg := sim.DefaultConfig()
	simCfg.Thermal.NX, simCfg.Thermal.NY = 24, 18
	simCfg.Core.SampleAccesses = 512
	simCfg.Core.SampleBranches = 256
	simCfg.WarmStartProbeSteps = 5

	trainSet := []string{"calculix", "gamess", "gromacs", "mcf", "h264ref"}
	freqs := []float64{3.0, 3.5, 3.75, 4.0, 4.25, 4.75}
	bc := telemetry.BuildConfig{
		Sim:         simCfg,
		Workloads:   trainSet,
		Frequencies: freqs,
		StepsPerRun: 60,
		Horizon:     12,
		SensorIndex: sim.DefaultSensorIndex,
	}
	ds, err := telemetry.Build(bc)
	if err != nil {
		t.Fatal(err)
	}
	wc := telemetry.DefaultWalkConfig(trainSet, freqs)
	wc.Sim = simCfg
	wc.StepsPerWalk = 192
	wc.HoldSteps = 24
	wc.Horizon = 12
	wc.WalksPerWorkload = 2
	dsw, err := telemetry.BuildWalk(wc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Merge(dsw); err != nil {
		t.Fatal(err)
	}
	pred, err := Train(ds, TrainConfig{Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	mse, err := pred.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.05 {
		t.Fatalf("pipeline-trained model MSE %v implausibly high", mse)
	}

	ctrl, err := NewController(pred, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sim.New(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := workload.DefaultSet().ByName("hmmer") // unseen by this model
	cfg := engine.DefaultLoopConfig()
	cfg.Steps = 96
	res, err := engine.RunLoop(p, w, ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incursions > 0 {
		t.Fatalf("ML10 incurred %d hotspots on unseen workload", res.Incursions)
	}
	if res.AvgFreq < 2.0 || res.AvgFreq > 5.0 {
		t.Fatalf("implausible average frequency %v", res.AvgFreq)
	}
}
