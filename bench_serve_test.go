// Serving-layer benches: the decision daemon's hot paths, measured on
// the trained quick-campaign model — the registry's in-process decide,
// and the HTTP round trip in single and batched form. Batched requests
// amortise the HTTP/JSON overhead across many chips, which is the
// deployment argument the artefact quantifies.
//
//	go test -bench='^BenchmarkRegistryDecide' -benchmem .
//	make bench-serve    # refresh BENCH_serve.json
package boreas_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"

	"github.com/hotgauge/boreas/internal/serve"
)

// serveBenchRegistry builds a registry around the trained ML05
// controller with the quick-campaign model.
func serveBenchRegistry(tb testing.TB) *serve.Registry {
	tb.Helper()
	l := benchLab(tb)
	ml05, err := l.MLController(0.05)
	if err != nil {
		tb.Fatal(err)
	}
	reg, err := serve.NewRegistry(serve.RegistryConfig{Controller: ml05, StartFreq: 3.75})
	if err != nil {
		tb.Fatal(err)
	}
	return reg
}

// BenchmarkRegistryDecide measures the in-process serving hot path:
// registry lookup, per-session lock, one ML decision on the compiled
// kernel, metrics update.
func BenchmarkRegistryDecide(b *testing.B) {
	reg := serveBenchRegistry(b)
	obs := engineBenchObservations(b)
	chips := serveBenchChips(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := reg.Decide(chips[i%len(chips)], obs[i%len(obs)])
		if err != nil {
			b.Fatal(err)
		}
		benchDecideSink = d.Freq
	}
}

// TestRegistryDecideZeroAllocEndToEnd pins the deployed serving path —
// trained model, session registry, metrics — at zero heap allocations
// per steady-state decision. This is the regular-CI guard behind the
// BENCH_serve.json numbers.
func TestRegistryDecideZeroAllocEndToEnd(t *testing.T) {
	reg := serveBenchRegistry(t)
	obs := engineBenchObservations(t)
	// Warm up: create the session and grow its scratch buffers.
	for i := 0; i < 3*len(obs); i++ {
		if _, err := reg.Decide("chip-0", obs[i%len(obs)]); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		d, err := reg.Decide("chip-0", obs[i%len(obs)])
		if err != nil {
			t.Fatal(err)
		}
		benchDecideSink = d.Freq
		i++
	})
	if allocs != 0 {
		t.Fatalf("Registry.Decide allocates %.1f objects per decision, want 0", allocs)
	}
}

func serveBenchChips(n int) []string {
	chips := make([]string, n)
	for i := range chips {
		chips[i] = fmt.Sprintf("chip-%03d", i)
	}
	return chips
}

// serveBenchBody renders a /v1/decide payload: a single observation
// when batch is 1, else a batch across the chips.
func serveBenchBody(tb testing.TB, chips []string, obs []serve.Observation, batch, round int) string {
	tb.Helper()
	var req serve.DecideRequest
	if batch == 1 {
		req.Chip = chips[round%len(chips)]
		o := obs[round%len(obs)]
		req.Observation = &o
	} else {
		req.Batch = make([]serve.DecideItem, batch)
		for i := range req.Batch {
			req.Batch[i] = serve.DecideItem{
				Chip:        chips[(round*batch+i)%len(chips)],
				Observation: obs[(round*batch+i)%len(obs)],
			}
		}
	}
	data, err := json.Marshal(req)
	if err != nil {
		tb.Fatal(err)
	}
	return string(data)
}

// TestWriteBenchServeArtefact measures the serving layer — in-process
// registry decide, single-request HTTP decide, and batched HTTP decide —
// and records the result in BENCH_serve.json. Gated behind an env var so
// the regular test run stays fast:
//
//	BENCH_SERVE=1 go test -run TestWriteBenchServeArtefact .
func TestWriteBenchServeArtefact(t *testing.T) {
	if os.Getenv("BENCH_SERVE") == "" {
		t.Skip("set BENCH_SERVE=1 to refresh BENCH_serve.json")
	}
	reg := serveBenchRegistry(t)
	rawObs := engineBenchObservations(t)
	wireObs := make([]serve.Observation, len(rawObs))
	for i, o := range rawObs {
		wireObs[i] = serve.Observation{SensorTemp: o.SensorTemp, Counters: o.Counters}
	}
	chips := serveBenchChips(64)

	// In-process decide: the floor every HTTP number is compared against.
	for i := 0; i < 3*len(rawObs); i++ {
		if _, err := reg.Decide(chips[i%len(chips)], rawObs[i%len(rawObs)]); err != nil {
			t.Fatal(err)
		}
	}
	direct := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := reg.Decide(chips[i%len(chips)], rawObs[i%len(rawObs)])
			if err != nil {
				b.Fatal(err)
			}
			benchDecideSink = d.Freq
		}
	})
	if direct.AllocsPerOp() != 0 {
		t.Errorf("Registry.Decide allocates %d objects/op, the artefact pins 0", direct.AllocsPerOp())
	}

	srv := httptest.NewServer(serve.NewHandler(reg))
	defer srv.Close()
	client := srv.Client()
	post := func(body string) {
		resp, err := client.Post(srv.URL+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	const batchSize = 256
	// Pre-render bodies so the measurement is the service, not the
	// client-side JSON encoder.
	singles := make([]string, 64)
	for i := range singles {
		singles[i] = serveBenchBody(t, chips, wireObs, 1, i)
	}
	batches := make([]string, 8)
	for i := range batches {
		batches[i] = serveBenchBody(t, chips, wireObs, batchSize, i)
	}

	single := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(singles[i%len(singles)])
		}
	})
	batched := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			post(batches[i%len(batches)])
		}
	})

	singleNs := single.NsPerOp()
	batchedPerDecisionNs := batched.NsPerOp() / batchSize
	artefact := map[string]any{
		"cpus":                          runtime.NumCPU(),
		"chips":                         len(chips),
		"registry_decide_ns_per_op":     direct.NsPerOp(),
		"registry_decide_allocs_per_op": direct.AllocsPerOp(),
		"registry_decide_bytes_per_op":  direct.AllocedBytesPerOp(),
		"http_single_ns_per_decision":   singleNs,
		"http_batch_size":               batchSize,
		"http_batched_ns_per_request":   batched.NsPerOp(),
		"http_batched_ns_per_decision":  batchedPerDecisionNs,
		"batched_speedup_per_decision":  float64(singleNs) / float64(batchedPerDecisionNs),
		"single_decisions_per_second":   1e9 / float64(singleNs),
		"batched_decisions_per_second":  1e9 / float64(batchedPerDecisionNs),
		"zero_alloc_pinned_by":          "TestRegistryDecideZeroAllocEndToEnd, TestRegistryDecideZeroAlloc",
		"controller":                    "ML05 (quick campaign)",
	}
	data, err := json.MarshalIndent(artefact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("registry decide %d ns/op (%d allocs); HTTP single %d ns/decision, batched(%d) %d ns/decision (%.1fx)",
		direct.NsPerOp(), direct.AllocsPerOp(), singleNs, batchSize, batchedPerDecisionNs,
		float64(singleNs)/float64(batchedPerDecisionNs))
}
