// Golden equivalence tests for the streaming trace/observer layer: the
// streamed paths (trace.Drive / PeakReducer / DatasetAppender) must
// reproduce the seed's materialized []sim.StepResult paths bit for bit,
// at -j1 and -j8. The materialized references are computed here exactly
// as the pre-streaming code did: Pipeline.RunStatic into a full trace,
// then post-hoc reductions/labelling over it.
package boreas_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/hotgauge/boreas/internal/control"
	"github.com/hotgauge/boreas/internal/engine"
	"github.com/hotgauge/boreas/internal/power"
	"github.com/hotgauge/boreas/internal/rng"
	"github.com/hotgauge/boreas/internal/runner"
	"github.com/hotgauge/boreas/internal/sim"
	"github.com/hotgauge/boreas/internal/telemetry"
	"github.com/hotgauge/boreas/internal/workload"
)

func equivSimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Thermal.NX, cfg.Thermal.NY = 24, 18
	cfg.WarmStartProbeSteps = 5
	return cfg
}

// TestEquivalence_BuildDataset: the streamed telemetry.Build must equal a
// hand-materialized campaign (RunStatic + AppendTrace per task, merged in
// canonical order), and must stay identical at -j1 and -j8.
func TestEquivalence_BuildDataset(t *testing.T) {
	cfg := telemetry.DefaultBuildConfig(
		[]string{"gromacs", "bzip2", "calculix"}, []float64{3.5, 4.0, 4.5})
	cfg.Sim = equivSimConfig()
	cfg.StepsPerRun = 48
	cfg.Horizon = 12

	// Materialized reference: the seed implementation of Build.
	want := telemetry.NewDataset(telemetry.FullFeatureNames())
	for _, name := range cfg.Workloads {
		for _, f := range cfg.Frequencies {
			scfg := cfg.Sim
			scfg.Seed = cfg.RunSeed(name, f)
			p, err := sim.New(scfg)
			if err != nil {
				t.Fatal(err)
			}
			steps, err := p.RunStatic(name, f, cfg.StepsPerRun)
			if err != nil {
				t.Fatal(err)
			}
			if err := telemetry.AppendTrace(want, steps, name, cfg.Horizon, cfg.SensorIndex); err != nil {
				t.Fatal(err)
			}
		}
	}
	if want.Len() == 0 {
		t.Fatal("empty reference dataset")
	}

	for _, j := range []int{1, 8} {
		c := cfg
		c.Workers = j
		got, err := telemetry.Build(c)
		if err != nil {
			t.Fatalf("streamed build at -j%d: %v", j, err)
		}
		requireSameDataset(t, got, want, "streamed vs materialized static build")
	}
}

// TestEquivalence_BuildWalkDataset: the streamed walk build must equal
// the seed's materialized walk (record the whole trace, then label), at
// -j1 and -j8.
func TestEquivalence_BuildWalkDataset(t *testing.T) {
	cfg := telemetry.DefaultWalkConfig([]string{"gromacs", "gamess"},
		[]float64{3.0, 3.25, 3.5, 3.75, 4.0, 4.25, 4.5, 4.75})
	cfg.Sim = equivSimConfig()
	cfg.StepsPerWalk = 120
	cfg.HoldSteps = 30
	cfg.Horizon = 12
	cfg.WalksPerWorkload = 2

	// Materialized reference: the seed implementation of buildOneWalk.
	want := telemetry.NewDataset(telemetry.FullFeatureNames())
	for _, name := range cfg.Workloads {
		for walk := 0; walk < cfg.WalksPerWorkload; walk++ {
			if err := materializedWalk(cfg, name, walk, want); err != nil {
				t.Fatal(err)
			}
		}
	}
	if want.Len() == 0 {
		t.Fatal("empty reference walk dataset")
	}

	for _, j := range []int{1, 8} {
		c := cfg
		c.Workers = j
		got, err := telemetry.BuildWalk(c)
		if err != nil {
			t.Fatalf("streamed walk at -j%d: %v", j, err)
		}
		requireSameDataset(t, got, want, "streamed vs materialized walk build")
	}
}

// materializedWalk is the seed implementation of one frequency walk:
// materialize the full trace and hold schedule, then label post hoc.
func materializedWalk(cfg telemetry.WalkConfig, name string, walk int, ds *telemetry.Dataset) error {
	w, err := workload.DefaultSet().ByName(name)
	if err != nil {
		return err
	}
	scfg := cfg.Sim
	scfg.Seed = runner.DeriveSeed(cfg.Sim.Seed, runner.HashString(name), uint64(walk))
	p, err := sim.New(scfg)
	if err != nil {
		return err
	}
	r := rng.New(runner.DeriveSeed(cfg.Seed, runner.HashString(name), uint64(walk), 1))
	fi := r.Intn(len(cfg.Frequencies))
	if err := p.WarmStart(w, cfg.Frequencies[fi]); err != nil {
		return err
	}
	run := w.NewRun(scfg.Seed)

	trace := make([]sim.StepResult, 0, cfg.StepsPerWalk)
	holds := make([]int, 0, cfg.StepsPerWalk)
	holdStart := 0
	for step := 0; step < cfg.StepsPerWalk; step++ {
		if step > 0 && step%cfg.HoldSteps == 0 {
			delta := 1 + r.Intn(2)
			if r.Bernoulli(0.15) {
				delta += 2
			}
			if r.Bernoulli(0.5) {
				delta = -delta
			}
			fi += delta
			if fi < 0 {
				fi = 0
			}
			if fi >= len(cfg.Frequencies) {
				fi = len(cfg.Frequencies) - 1
			}
			holdStart = step
		}
		res, err := p.Step(run, cfg.Frequencies[fi])
		if err != nil {
			return err
		}
		trace = append(trace, res)
		holds = append(holds, holdStart)
	}
	for t := 0; t+cfg.Horizon < len(trace); t++ {
		if holds[t+cfg.Horizon] != holds[t] {
			continue
		}
		label := 0.0
		for h := 1; h <= cfg.Horizon; h++ {
			if s := trace[t+h].Severity.Max; s > label {
				label = s
			}
		}
		x := telemetry.Extract(trace[t].Counters, trace[t].SensorDelayed[cfg.SensorIndex])
		if err := ds.Add(x, label, name); err != nil {
			return err
		}
	}
	return nil
}

// TestEquivalence_OraclePeaks: the PeakReducer-streamed oracle table must
// equal peaks computed from materialized traces, at -j1 and -j8.
func TestEquivalence_OraclePeaks(t *testing.T) {
	workloads := []string{"gromacs", "bzip2"}
	freqs := []float64{3.5, 4.0, 4.5}
	const steps = 48
	cfg := equivSimConfig()

	p, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Materialized reference peaks.
	wantPeak := make(map[string]map[float64]float64)
	for _, name := range workloads {
		wantPeak[name] = make(map[float64]float64)
		for _, f := range freqs {
			pc, err := p.Clone()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := pc.RunStatic(name, f, steps)
			if err != nil {
				t.Fatal(err)
			}
			wantPeak[name][f] = sim.PeakSeverity(tr)
		}
	}

	for _, j := range []int{1, 8} {
		table, err := engine.BuildOracleContext(context.Background(), p, workloads, freqs, steps, j)
		if err != nil {
			t.Fatalf("oracle at -j%d: %v", j, err)
		}
		if !reflect.DeepEqual(table.Peak, wantPeak) {
			t.Fatalf("-j%d: streamed oracle peaks %v differ from materialized %v", j, table.Peak, wantPeak)
		}
	}
}

// TestEquivalence_CriticalTemps: the streamed critical-temperature sweep
// must equal the materialized per-trace minimum, at -j1 and -j8.
func TestEquivalence_CriticalTemps(t *testing.T) {
	workloads := []string{"gromacs", "gamess"}
	freqs := []float64{4.25, 4.5, 4.75}
	const (
		steps       = 48
		sensorIndex = sim.DefaultSensorIndex
	)
	cfg := equivSimConfig()

	p, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]map[float64]float64)
	sawFinite := false
	for _, name := range workloads {
		want[name] = make(map[float64]float64)
		for _, f := range freqs {
			pc, err := p.Clone()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := pc.RunStatic(name, f, steps)
			if err != nil {
				t.Fatal(err)
			}
			crit := math.Inf(1)
			for i := range tr {
				if tr[i].Severity.Max >= 1.0 {
					if v := tr[i].SensorDelayed[sensorIndex]; v < crit {
						crit = v
					}
				}
			}
			want[name][f] = crit
			if !math.IsInf(crit, 1) {
				sawFinite = true
			}
		}
	}
	if !sawFinite {
		t.Fatal("reference sweep produced no incursions; test would be vacuous")
	}

	for _, j := range []int{1, 8} {
		ct, err := engine.BuildCriticalTempsContext(context.Background(), p, workloads, freqs, steps, sensorIndex, j)
		if err != nil {
			t.Fatalf("crit temps at -j%d: %v", j, err)
		}
		if !reflect.DeepEqual(ct.PerWorkload, want) {
			t.Fatalf("-j%d: streamed crit temps %v differ from materialized %v", j, ct.PerWorkload, want)
		}
	}
}

// TestEquivalence_RunLoop: the Drive-based closed loop must reproduce the
// seed's explicit step loop (recorded trace, decisions, and scores).
func TestEquivalence_RunLoop(t *testing.T) {
	cfg := equivSimConfig()
	p, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.DefaultSet().ByName("gromacs")
	if err != nil {
		t.Fatal(err)
	}
	lc := engine.DefaultLoopConfig()
	lc.Steps = 60
	lc.DecisionPeriod = 12

	table, err := engine.BuildCriticalTemps(p, []string{"gromacs", "gamess"},
		[]float64{3.5, 3.75, 4.0, 4.25, 4.5}, 48, lc.SensorIndex)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := control.NewThermalController(table, 0)

	// Materialized reference: the seed RunLoop body.
	pr, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.WarmStart(w, lc.StartFreq); err != nil {
		t.Fatal(err)
	}
	ctrl.Reset()
	run := w.NewRun(pr.Config().Seed)
	var wantFreqs, wantSev, wantTemp []float64
	freq := lc.StartFreq
	var last sim.StepResult
	for step := 0; step < lc.Steps; step++ {
		r, err := pr.Step(run, freq)
		if err != nil {
			t.Fatal(err)
		}
		last = r
		wantFreqs = append(wantFreqs, freq)
		wantSev = append(wantSev, r.Severity.Max)
		wantTemp = append(wantTemp, r.SensorDelayed[lc.SensorIndex])
		if (step+1)%lc.DecisionPeriod == 0 && step+1 < lc.Steps {
			obs := control.Observation{
				Counters:    last.Counters,
				SensorTemp:  last.SensorDelayed[lc.SensorIndex],
				CurrentFreq: freq,
			}
			freq = power.DefaultVF().ClampFrequency(ctrl.Decide(obs))
		}
	}

	ps, err := p.Clone()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.RunLoop(ps, w, ctrl, lc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Freqs, wantFreqs) {
		t.Fatalf("streamed loop frequencies differ:\n got %v\nwant %v", res.Freqs, wantFreqs)
	}
	if !reflect.DeepEqual(res.Severity, wantSev) {
		t.Fatal("streamed loop severities differ from materialized reference")
	}
	if !reflect.DeepEqual(res.SensorTemp, wantTemp) {
		t.Fatal("streamed loop sensor temps differ from materialized reference")
	}
}
