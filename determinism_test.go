package boreas_test

import (
	"bytes"
	"reflect"
	"testing"

	boreas "github.com/hotgauge/boreas"
)

// The execution engine promises bit-identical artefacts at any worker
// count. These tests pin that promise: the same campaign at -j1 and -j8
// must produce byte-identical datasets and a byte-identical trained model.

func detBuildConfig() boreas.BuildConfig {
	cfg := boreas.DefaultBuildConfig([]string{"gromacs", "gamess", "bzip2"}, []float64{3.5, 4.0, 4.5})
	cfg.Sim.Thermal.NX, cfg.Sim.Thermal.NY = 24, 18
	cfg.Sim.WarmStartProbeSteps = 5
	cfg.StepsPerRun = 48
	cfg.Horizon = 12
	return cfg
}

func buildAt(t *testing.T, workers int) *boreas.Dataset {
	t.Helper()
	cfg := detBuildConfig()
	cfg.Workers = workers
	ds, err := boreas.BuildDataset(cfg)
	if err != nil {
		t.Fatalf("build at -j%d: %v", workers, err)
	}
	return ds
}

func requireSameDataset(t *testing.T, a, b *boreas.Dataset, what string) {
	t.Helper()
	if !reflect.DeepEqual(a.FeatureNames, b.FeatureNames) {
		t.Fatalf("%s: feature names differ across worker counts", what)
	}
	if !reflect.DeepEqual(a.Workloads, b.Workloads) {
		t.Fatalf("%s: workload columns differ across worker counts", what)
	}
	if !reflect.DeepEqual(a.Y, b.Y) {
		t.Fatalf("%s: labels differ across worker counts", what)
	}
	if !reflect.DeepEqual(a.X, b.X) {
		t.Fatalf("%s: feature rows differ across worker counts", what)
	}
}

func TestDeterminism_BuildDataset(t *testing.T) {
	seq := buildAt(t, 1)
	if seq.Len() == 0 {
		t.Fatal("empty dataset")
	}
	par := buildAt(t, 8)
	requireSameDataset(t, seq, par, "static build")
}

func TestDeterminism_BuildWalkDataset(t *testing.T) {
	cfg := boreas.DefaultWalkConfig([]string{"gromacs", "bzip2"}, boreas.Frequencies())
	cfg.Sim.Thermal.NX, cfg.Sim.Thermal.NY = 24, 18
	cfg.Sim.WarmStartProbeSteps = 5
	cfg.StepsPerWalk = 120
	cfg.HoldSteps = 30
	cfg.Horizon = 12
	cfg.WalksPerWorkload = 2

	run := func(workers int) *boreas.Dataset {
		c := cfg
		c.Workers = workers
		ds, err := boreas.BuildWalkDataset(c)
		if err != nil {
			t.Fatalf("walk at -j%d: %v", workers, err)
		}
		return ds
	}
	seq := run(1)
	if seq.Len() == 0 {
		t.Fatal("empty walk dataset")
	}
	requireSameDataset(t, seq, run(8), "walk build")
}

func TestDeterminism_TrainedModel(t *testing.T) {
	testDeterminismTrainedModel(t, boreas.GBTMethodExact)
}

// The histogram-binned fast path makes the same promise: per-feature
// histograms are accumulated in global instance order and merged in
// feature order, so the fan-out width never shows in the model bytes.
func TestDeterminism_TrainedModelHist(t *testing.T) {
	testDeterminismTrainedModel(t, boreas.GBTMethodHist)
}

func testDeterminismTrainedModel(t *testing.T, method string) {
	ds := buildAt(t, 8)

	train := func(workers int) *boreas.Predictor {
		cfg := boreas.DefaultTrainConfig()
		cfg.Params.NumTrees = 40
		cfg.Params.Method = method
		cfg.Params.Workers = workers
		pred, err := boreas.TrainPredictor(ds, cfg)
		if err != nil {
			t.Fatalf("train at -j%d: %v", workers, err)
		}
		return pred
	}
	seq, par := train(1), train(8)

	// The serialised ensembles must match byte for byte: same splits, same
	// thresholds, same leaf weights, regardless of split-search fan-out.
	var bufSeq, bufPar bytes.Buffer
	if _, err := seq.Model().WriteTo(&bufSeq); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Model().WriteTo(&bufPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("serialised models differ across worker counts")
	}

	// And so must every prediction.
	sel, err := ds.Select(seq.Model().FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range sel.X {
		if a, b := seq.Model().Predict(row), par.Model().Predict(row); a != b {
			t.Fatalf("row %d: -j1 predicts %v, -j8 predicts %v", i, a, b)
		}
	}
}
