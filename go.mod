module github.com/hotgauge/boreas

go 1.22
