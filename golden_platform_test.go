package boreas_test

import (
	"math"
	"testing"

	"github.com/hotgauge/boreas"
)

// goldenQuickLab holds values captured from the pre-platform-refactor
// tree: a full quick-config Lab campaign (oracle, critical temperatures,
// ML05 closed loop, training data) at Workers=4. The platform layer must
// reproduce every one of them bit-for-bit on the default platform — the
// refactor is a re-plumbing, not a re-modelling.
var goldenQuickLab = struct {
	oracleBest map[string]float64
	oraclePeak map[string]map[float64]float64
	critTemps  map[float64]float64
	loopAvg    float64
	loopPeak   float64
	loopIncur  int
	trainRows  int
	trainYSum  float64
}{
	oracleBest: map[string]float64{"gromacs": 4, "hmmer": 4, "bzip2": 4.75},
	oraclePeak: map[string]map[float64]float64{
		"gromacs": {
			3:    0.44129049003423421,
			3.5:  0.62536446127222034,
			3.75: 0.74104119305335026,
			4:    0.86954108732284363,
			4.25: 1.072536824120909,
			4.5:  1.3046589526539938,
			4.75: 1.6787056990390603,
		},
		"hmmer": {
			3:    0.39705713528544823,
			3.5:  0.57092531080929054,
			3.75: 0.68129792571328052,
			4:    0.8049825531574567,
			4.25: 1.0003897052188082,
			4.5:  1.2268429757642276,
			4.75: 1.5973181659117335,
		},
		"bzip2": {
			3:    0.24693112892912852,
			3.5:  0.35079519636981793,
			3.75: 0.41666117622132676,
			4:    0.49032660345548901,
			4.25: 0.60690203222702166,
			4.5:  0.74100935507719934,
			4.75: 0.95698831359254755,
		},
	},
	critTemps: map[float64]float64{
		3:    math.Inf(1),
		3.5:  math.Inf(1),
		3.75: math.Inf(1),
		4:    math.Inf(1),
		4.25: 84.768994433762572,
		4.5:  91.353446212176948,
		4.75: 100.62539726236871,
	},
	loopAvg:   4.375,
	loopPeak:  0.67945939831652624,
	loopIncur: 0,
	trainRows: 9216,
	trainYSum: 6718.8101333853419,
}

// TestQuickLabMatchesPreRefactorGolden runs the full quick campaign on
// the default platform and compares against the pre-refactor capture.
func TestQuickLabMatchesPreRefactorGolden(t *testing.T) {
	g := goldenQuickLab
	cfg := boreas.QuickExperimentConfig()
	cfg.Workers = 4
	lab, err := boreas.NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}

	or, err := lab.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	for name, best := range g.oracleBest {
		if or.Best[name] != best {
			t.Errorf("oracle best %s = %.17g, golden %.17g", name, or.Best[name], best)
		}
		for f, peak := range g.oraclePeak[name] {
			if or.Peak[name][f] != peak {
				t.Errorf("oracle peak %s @%g = %.17g, golden %.17g", name, f, or.Peak[name][f], peak)
			}
		}
	}

	ct, err := lab.CriticalTemps()
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range g.critTemps {
		if got := ct.GlobalAt(f); got != want {
			t.Errorf("crit temp @%g = %.17g, golden %.17g", f, got, want)
		}
	}

	ml, err := lab.MLController(0.05)
	if err != nil {
		t.Fatal(err)
	}
	w, err := boreas.WorkloadByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	p, err := lab.Pipeline().Clone()
	if err != nil {
		t.Fatal(err)
	}
	lc := boreas.DefaultLoopConfig()
	lc.Steps = cfg.StepsPerRun
	lc.SensorIndex = cfg.SensorIndex
	res, err := boreas.RunLoop(p, w, ml, lc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgFreq != g.loopAvg || res.PeakSeverity != g.loopPeak || res.Incursions != g.loopIncur {
		t.Errorf("ML05 loop on bzip2: avg=%.17g peak=%.17g incursions=%d, golden avg=%.17g peak=%.17g incursions=%d",
			res.AvgFreq, res.PeakSeverity, res.Incursions, g.loopAvg, g.loopPeak, g.loopIncur)
	}

	ds, err := lab.TrainingData()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, y := range ds.Y {
		sum += y
	}
	if ds.Len() != g.trainRows || sum != g.trainYSum {
		t.Errorf("training data: rows=%d ysum=%.17g, golden rows=%d ysum=%.17g",
			ds.Len(), sum, g.trainRows, g.trainYSum)
	}
}

// TestMobilePlatformEndToEnd runs the second registered platform through
// the whole campaign via the facade: dataset build, model training, and
// a closed ML05 loop, all on the mobile scenario's own VF curve, sink
// and split. The mobile part must behave like a different chip: its
// curve tops out at 4.5 GHz and its passive sink throttles harder.
func TestMobilePlatformEndToEnd(t *testing.T) {
	pf, err := boreas.PlatformByName("mobile-7nm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := boreas.QuickenExperimentConfig(boreas.ExperimentConfigForPlatform(pf))
	// Trim further: the point is end-to-end plumbing, not model quality.
	cfg.TrainNames = cfg.TrainNames[:4]
	cfg.TestNames = cfg.TestNames[:1]
	cfg.WalksPerWorkload = 1
	cfg.Workers = 4
	lab, err := boreas.NewLab(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ds, err := lab.TrainingData()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("mobile training dataset is empty")
	}

	ml, err := lab.MLController(0.05)
	if err != nil {
		t.Fatal(err)
	}
	w, err := lab.Pipeline().Workloads().ByName(cfg.TestNames[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := lab.Pipeline().Clone()
	if err != nil {
		t.Fatal(err)
	}
	lc := boreas.DefaultLoopConfig()
	lc.Steps = cfg.StepsPerRun
	lc.SensorIndex = cfg.SensorIndex
	lc.StartFreq = cfg.StartFreq
	res, err := boreas.RunLoop(p, w, ml, lc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Freqs) != cfg.StepsPerRun {
		t.Fatalf("mobile loop ran %d steps, want %d", len(res.Freqs), cfg.StepsPerRun)
	}
	for i, f := range res.Freqs {
		if f > pf.VF.MaxGHz()+1e-9 {
			t.Fatalf("step %d commanded %g GHz above the mobile curve's %g GHz ceiling", i, f, pf.VF.MaxGHz())
		}
		if _, err := pf.VF.FrequencyIndex(f); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
