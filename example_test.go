package boreas_test

import (
	"fmt"
	"log"

	"github.com/hotgauge/boreas"
)

// ExampleVoltageFor shows the Table I VF curve lookup.
func ExampleVoltageFor() {
	for _, f := range []float64{2.0, 3.75, 5.0} {
		fmt.Printf("%.2f GHz -> %.4g V\n", f, boreas.VoltageFor(f))
	}
	// Output:
	// 2.00 GHz -> 0.64 V
	// 3.75 GHz -> 0.925 V
	// 5.00 GHz -> 1.4 V
}

// ExampleSeverityParams_Severity evaluates the paper's anchor points of
// the Hotspot-Severity metric.
func ExampleSeverityParams_Severity() {
	p := boreas.DefaultSeverityParams()
	fmt.Printf("uniformly hot:    %.2f\n", p.Severity(115, 0))
	fmt.Printf("advanced hotspot: %.2f\n", p.Severity(80, 40))
	fmt.Printf("in between:       %.2f\n", p.Severity(95, 20))
	// Output:
	// uniformly hot:    1.00
	// advanced hotspot: 1.00
	// in between:       0.96
}

// ExampleWorkloadByName looks up a benchmark model from the catalogue.
func ExampleWorkloadByName() {
	w, err := boreas.WorkloadByName("gromacs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(w.Name, len(w.Phases), "phases")
	// Output:
	// gromacs 2 phases
}

// ExampleNewPipeline runs the simulation pipeline for one millisecond and
// reports ground-truth severity - the signal Boreas learns to predict.
func ExampleNewPipeline() {
	cfg := boreas.DefaultSimConfig()
	pipe, err := boreas.NewPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := pipe.RunStatic("calculix", 4.0, 12)
	if err != nil {
		log.Fatal(err)
	}
	last := trace[len(trace)-1]
	fmt.Printf("t=%.2f ms, %d sensors, severity in [0,2]: %t\n",
		last.Time*1e3, len(last.SensorDelayed), last.Severity.Max >= 0 && last.Severity.Max <= 2)
	// Output:
	// t=0.96 ms, 7 sensors, severity in [0,2]: true
}

// ExampleTrainPredictor trains a miniature severity model and asks it a
// what-if question, exactly as the Boreas controller does every 960 us.
func ExampleTrainPredictor() {
	cfg := boreas.DefaultSimConfig()
	cfg.Thermal.NX, cfg.Thermal.NY = 24, 18
	cfg.Core.SampleAccesses = 512
	cfg.Core.SampleBranches = 256
	cfg.WarmStartProbeSteps = 5

	bc := boreas.DefaultBuildConfig([]string{"calculix", "mcf"}, []float64{3.0, 4.0, 4.75})
	bc.Sim = cfg
	bc.StepsPerRun = 40
	bc.Horizon = 12
	ds, err := boreas.BuildDataset(bc)
	if err != nil {
		log.Fatal(err)
	}

	tc := boreas.DefaultTrainConfig()
	tc.Params.NumTrees = 20
	pred, err := boreas.TrainPredictor(ds, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d trees over %d features, %d B of weights\n",
		len(pred.Model().Trees), len(pred.Model().FeatureNames), pred.Model().WeightBytes())
	// Output:
	// model: 20 trees over 20 features, 1200 B of weights
}
